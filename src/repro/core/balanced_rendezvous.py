"""Balanced rendezvous replication — the paper's open problem, explored.

The conclusion of the paper asks: *"We also believe that it should be
possible to construct placement strategies that are O(k)-competitive for
arbitrary insertions and removals of storage devices.  Is this true?"*

This module implements the natural candidate.  Taking the top-``k``
rendezvous winners is k-competitive *by construction* for set-movement:
adding a device moves exactly the balls it wins into the top-k (one copy
each), removing one moves exactly its own copies — scores of other devices
never change.  The catch is fairness: with capacity-proportional weights,
top-k inclusion probabilities are **not** capacity-proportional — that is
precisely the paper's Lemma 2.4 (top-k of a fair single-draw scheme is a
*trivial* strategy).  Two measures repair it:

* **Pinning** — bins whose clipped fair demand is ``t_i = 1`` must appear
  in *every* placement (no finite weight achieves that), so they are
  selected unconditionally and only the remaining copies race.
* **Calibration** — the remaining weights are fitted by iterative
  proportional scaling (``w_i <- w_i * (target_i / observed_i)^rate``)
  against Monte-Carlo estimates of the top-k' inclusion probabilities, a
  standard fixed point for inclusion-probability-proportional-to-size
  sampling.

The result is *approximately* fair (the bench measures the residual) and
aggressively adaptive — evidence for the paper's conjecture, with the
fairness/adaptivity tension made explicit.  Position identification is
weaker than Redundant Share's: positions follow the score order, so an
insertion can permute positions even when the copy *set* barely changes
(positional movement is the price; the bench reports both).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..capacity.clipping import clip_capacities
from ..hashing.primitives import derive_base, unit_from_base_open
from ..placement.base import ReplicationStrategy
from ..types import BinSpec, Placement, sort_bins_by_capacity

#: Fair demands within this distance of 1 are treated as saturated.
_PIN_EPS = 1e-9


class BalancedRendezvous(ReplicationStrategy):
    """Top-k rendezvous with pinned saturated bins and calibrated weights."""

    name = "balanced-rendezvous"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        calibration_samples: int = 20_000,
        calibration_iterations: int = 12,
        calibration_rate: float = 0.8,
    ) -> None:
        """Build and calibrate the strategy.

        Args:
            bins: The participating storage devices.
            copies: Replication degree ``k``.
            namespace: Hash salt prefix.
            calibration_samples: Monte-Carlo sample size per calibration
                iteration (0 disables calibration — raw capacity weights,
                i.e. the paper's trivial strategy, for ablation).
            calibration_iterations: Fixed-point iterations.
            calibration_rate: Step exponent in (0, 1]; smaller is more
                stable, larger converges faster.
        """
        super().__init__(bins, copies, namespace)
        if not 0.0 < calibration_rate <= 1.0:
            raise ValueError("calibration_rate must be in (0, 1]")
        ordered = sort_bins_by_capacity(self._bins)
        clipped = clip_capacities(
            [float(spec.capacity) for spec in ordered], copies
        )
        total = sum(clipped)
        targets = {
            spec.bin_id: copies * capacity / total
            for spec, capacity in zip(ordered, clipped)
        }
        self._pinned: List[str] = [
            spec.bin_id
            for spec, capacity in zip(ordered, clipped)
            if copies * capacity / total >= 1.0 - _PIN_EPS
        ]
        self._race_targets: Dict[str, float] = {
            bin_id: target
            for bin_id, target in targets.items()
            if bin_id not in self._pinned
        }
        self._race_copies = copies - len(self._pinned)
        self._bases: Dict[str, int] = {
            bin_id: derive_base(self._namespace, "race", bin_id)
            for bin_id in self._race_targets
        }
        self._weights: Dict[str, float] = {
            bin_id: max(target, 1e-12)
            for bin_id, target in self._race_targets.items()
        }
        if self._race_copies > 0 and calibration_samples > 0:
            self._calibrate(
                calibration_samples, calibration_iterations, calibration_rate
            )

    @property
    def pinned_bins(self) -> List[str]:
        """Bins included in every placement (saturated fair demand)."""
        return list(self._pinned)

    @property
    def weights(self) -> Dict[str, float]:
        """The calibrated race weights (diagnostic)."""
        return dict(self._weights)

    def _race(self, address: int) -> List[str]:
        """Race-bin ids ordered by descending rendezvous score."""
        scored = []
        for bin_id, weight in self._weights.items():
            uniform = unit_from_base_open(self._bases[bin_id], address)
            scored.append((-weight / math.log(uniform), bin_id))
        scored.sort(reverse=True)
        return [bin_id for _, bin_id in scored]

    def _calibrate(self, samples: int, iterations: int, rate: float) -> None:
        """Iterative proportional fitting of the race weights."""
        wanted = self._race_copies
        for _ in range(iterations):
            counts = {bin_id: 0 for bin_id in self._weights}
            # Negative keys keep the calibration sample space disjoint from
            # real ball addresses.
            for sample in range(samples):
                for bin_id in self._race(~sample)[:wanted]:
                    counts[bin_id] += 1
            drift = 0.0
            for bin_id, target in self._race_targets.items():
                observed = max(counts[bin_id] / samples, 1e-6)
                ratio = target / observed
                drift = max(drift, abs(ratio - 1.0))
                self._weights[bin_id] *= ratio ** rate
            if drift < 0.01:
                break

    def place(self, address: int) -> Placement:
        """Pinned bins first (capacity order), then the top race winners."""
        placement = list(self._pinned)
        if self._race_copies > 0:
            placement.extend(self._race(address)[: self._race_copies])
        return tuple(placement)

    def expected_shares(self) -> Dict[str, float]:
        """Fair targets (the calibration objective; residual error is
        measured empirically by the benches)."""
        total = float(self._copies)
        shares = {bin_id: 1.0 / total for bin_id in self._pinned}
        shares.update(
            {
                bin_id: target / total
                for bin_id, target in self._race_targets.items()
            }
        )
        return shares
