"""Balanced rendezvous replication — the paper's open problem, explored.

The conclusion of the paper asks: *"We also believe that it should be
possible to construct placement strategies that are O(k)-competitive for
arbitrary insertions and removals of storage devices.  Is this true?"*

This module implements the natural candidate.  Taking the top-``k``
rendezvous winners is k-competitive *by construction* for set-movement:
adding a device moves exactly the balls it wins into the top-k (one copy
each), removing one moves exactly its own copies — scores of other devices
never change.  The catch is fairness: with capacity-proportional weights,
top-k inclusion probabilities are **not** capacity-proportional — that is
precisely the paper's Lemma 2.4 (top-k of a fair single-draw scheme is a
*trivial* strategy).  Two measures repair it:

* **Pinning** — bins whose clipped fair demand is ``t_i = 1`` must appear
  in *every* placement (no finite weight achieves that), so they are
  selected unconditionally and only the remaining copies race.
* **Calibration** — the remaining weights are fitted by iterative
  proportional scaling (``w_i <- w_i * (target_i / observed_i)^rate``)
  against Monte-Carlo estimates of the top-k' inclusion probabilities, a
  standard fixed point for inclusion-probability-proportional-to-size
  sampling.

The result is *approximately* fair (the bench measures the residual) and
aggressively adaptive — evidence for the paper's conjecture, with the
fairness/adaptivity tension made explicit.  Position identification is
weaker than Redundant Share's: positions follow the score order, so an
insertion can permute positions even when the copy *set* barely changes
(positional movement is the price; the bench reports both).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .. import obs
from .._compat import get_numpy
from ..capacity.clipping import clip_capacities
from ..hashing.primitives import as_u64_array, derive_base, unit_from_base_open
from ..placement import kernels, precompute
from ..placement.base import BatchPlacement, ReplicationStrategy, record_batch
from ..types import BinSpec, Placement, sort_bins_by_capacity

#: Fair demands within this distance of 1 are treated as saturated.
_PIN_EPS = 1e-9


class _RaceBundle:
    """Shareable vector mirror of one calibrated race configuration.

    Holds the pinned rank prefix plus the salt-base / calibrated-weight /
    rank vectors the batch engine races over.  Calibration is
    deterministic per configuration, so instances with the same
    fingerprint built under the same placement epoch share one bundle via
    :func:`repro.placement.precompute.shared_cache`.
    """

    __slots__ = ("pinned_ranks", "bases", "weights", "race_ranks")

    def __init__(self, pinned_ranks, bases, weights, race_ranks) -> None:
        self.pinned_ranks = pinned_ranks
        self.bases = bases
        self.weights = weights
        self.race_ranks = race_ranks


class BalancedRendezvous(ReplicationStrategy):
    """Top-k rendezvous with pinned saturated bins and calibrated weights."""

    name = "balanced-rendezvous"
    kernel = "hrw-topk"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        calibration_samples: int = 20_000,
        calibration_iterations: int = 12,
        calibration_rate: float = 0.8,
    ) -> None:
        """Build and calibrate the strategy.

        Args:
            bins: The participating storage devices.
            copies: Replication degree ``k``.
            namespace: Hash salt prefix.
            calibration_samples: Monte-Carlo sample size per calibration
                iteration (0 disables calibration — raw capacity weights,
                i.e. the paper's trivial strategy, for ablation).
            calibration_iterations: Fixed-point iterations.
            calibration_rate: Step exponent in (0, 1]; smaller is more
                stable, larger converges faster.
        """
        super().__init__(bins, copies, namespace)
        if not 0.0 < calibration_rate <= 1.0:
            raise ValueError("calibration_rate must be in (0, 1]")
        ordered = sort_bins_by_capacity(self._bins)
        clipped = clip_capacities(
            [float(spec.capacity) for spec in ordered], copies
        )
        total = sum(clipped)
        targets = {
            spec.bin_id: copies * capacity / total
            for spec, capacity in zip(ordered, clipped)
        }
        self._pinned: List[str] = [
            spec.bin_id
            for spec, capacity in zip(ordered, clipped)
            if copies * capacity / total >= 1.0 - _PIN_EPS
        ]
        self._race_targets: Dict[str, float] = {
            bin_id: target
            for bin_id, target in targets.items()
            if bin_id not in self._pinned
        }
        self._race_copies = copies - len(self._pinned)
        self._bases: Dict[str, int] = {
            bin_id: derive_base(self._namespace, "race", bin_id)
            for bin_id in self._race_targets
        }
        self._weights: Dict[str, float] = {
            bin_id: max(target, 1e-12)
            for bin_id, target in self._race_targets.items()
        }
        self._calibration = (
            calibration_samples, calibration_iterations, calibration_rate
        )
        if self._race_copies > 0 and calibration_samples > 0:
            self._calibrate(
                calibration_samples, calibration_iterations, calibration_rate
            )
        self._rank_ids = [spec.bin_id for spec in self._bins]
        self._rank_index = {
            bin_id: rank for rank, bin_id in enumerate(self._rank_ids)
        }
        self._epoch = precompute.current_epoch()
        self._vector: Optional[_RaceBundle] = None

    @property
    def pinned_bins(self) -> List[str]:
        """Bins included in every placement (saturated fair demand)."""
        return list(self._pinned)

    @property
    def weights(self) -> Dict[str, float]:
        """The calibrated race weights (diagnostic)."""
        return dict(self._weights)

    def _race(self, address: int) -> List[str]:
        """Race-bin ids ordered by descending rendezvous score."""
        scored = []
        for bin_id, weight in self._weights.items():
            uniform = unit_from_base_open(self._bases[bin_id], address)
            scored.append((-weight / math.log(uniform), bin_id))
        scored.sort(reverse=True)
        return [bin_id for _, bin_id in scored]

    def _calibrate(self, samples: int, iterations: int, rate: float) -> None:
        """Iterative proportional fitting of the race weights."""
        wanted = self._race_copies
        for _ in range(iterations):
            counts = {bin_id: 0 for bin_id in self._weights}
            # Negative keys keep the calibration sample space disjoint from
            # real ball addresses.
            for sample in range(samples):
                for bin_id in self._race(~sample)[:wanted]:
                    counts[bin_id] += 1
            drift = 0.0
            for bin_id, target in self._race_targets.items():
                observed = max(counts[bin_id] / samples, 1e-6)
                ratio = target / observed
                drift = max(drift, abs(ratio - 1.0))
                self._weights[bin_id] *= ratio ** rate
            if drift < 0.01:
                break

    def place(self, address: int) -> Placement:
        """Pinned bins first (capacity order), then the top race winners."""
        placement = list(self._pinned)
        if self._race_copies > 0:
            placement.extend(self._race(address)[: self._race_copies])
        return tuple(placement)

    # ------------------------------------------------------------------
    # Batch placement
    # ------------------------------------------------------------------

    def _fingerprint(self) -> tuple:
        """Everything the calibrated race state depends on."""
        return (
            "balanced-rendezvous",
            self._namespace,
            self._copies,
            self._calibration,
            tuple((spec.bin_id, spec.capacity) for spec in self._bins),
        )

    def _ensure_vector_state(self, np) -> _RaceBundle:
        """Attach this instance to its epoch-keyed race bundle (see
        :class:`_RaceBundle`); consulted once, on the first batch call."""
        bundle = self._vector
        if bundle is not None:
            return bundle
        cache = precompute.shared_cache()
        fingerprint = self._fingerprint()
        bundle = cache.get(fingerprint, self._epoch)
        if bundle is None:
            race_ids = list(self._weights)
            bundle = cache.put(
                fingerprint,
                self._epoch,
                _RaceBundle(
                    pinned_ranks=[
                        self._rank_index[bin_id] for bin_id in self._pinned
                    ],
                    bases=np.asarray(
                        [self._bases[bin_id] for bin_id in race_ids],
                        dtype=np.uint64,
                    ),
                    weights=np.asarray(
                        [self._weights[bin_id] for bin_id in race_ids],
                        dtype=np.float64,
                    ),
                    race_ranks=np.asarray(
                        [self._rank_index[bin_id] for bin_id in race_ids],
                        dtype=np.int64,
                    ),
                ),
            )
        self._vector = bundle
        return bundle

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Vectorized top-k race: one blocked score matrix per batch.

        The pinned prefix is constant by construction; the remaining
        copies fall out of ``race_copies`` guarded without-replacement
        argmax passes over a single ``-w / ln(u)`` score matrix — exactly
        the expression the scalar :meth:`_race` sorts by.  Rows where any
        draw was decided inside :data:`~repro.placement.kernels.TIE_GUARD`
        (which includes every exact score tie, where the scalar sort
        breaks ties by bin id instead of column order) are re-derived by
        :meth:`place`, keeping the batch element-wise identical to the
        scalar loop.  Without NumPy the generic scalar loop runs.
        """
        np = get_numpy()
        if np is None:
            return super()._place_many_serial(addresses)
        bundle = self._ensure_vector_state(np)
        addr = as_u64_array(addresses)
        count = addr.shape[0]
        columns = np.empty((self._copies, count), dtype=np.int64)
        for position, rank in enumerate(bundle.pinned_ranks):
            columns[position, :] = rank
        offset = len(bundle.pinned_ranks)
        unsafe_indices: List[int] = []
        if self._race_copies > 0:
            for start, stop in kernels.blocks(count):
                mixed = kernels.premix(addr[start:stop])
                uniforms = kernels.open_draw_matrix(bundle.bases, mixed)
                scores = kernels.hrw_score_matrix(bundle.weights, uniforms)
                winners, unsafe = kernels.topk_with_guard(
                    scores, self._race_copies
                )
                for draw, draw_winners in enumerate(winners):
                    columns[offset + draw, start:stop] = bundle.race_ranks[
                        draw_winners
                    ]
                unsafe_indices.extend(start + np.flatnonzero(unsafe))
        for index in unsafe_indices:
            # Near-tie: the scalar sort is the authority on this address.
            placement = self.place(int(addresses[index]))
            for position, bin_id in enumerate(placement):
                columns[position, index] = self._rank_index[bin_id]
        kernels.record_tie_recomputes(self.kernel, len(unsafe_indices))
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, count, kernel=self.kernel
            )
        return BatchPlacement(self._rank_ids, list(columns))

    def expected_shares(self) -> Dict[str, float]:
        """Fair targets (the calibration objective; residual error is
        measured empirically by the benches)."""
        total = float(self._copies)
        shares = {bin_id: 1.0 / total for bin_id in self._pinned}
        shares.update(
            {
                bin_id: target / total
                for bin_id, target in self._race_targets.items()
            }
        )
        return shares
