"""Byte-addressable virtual volume — the user-facing virtualization layer.

The paper's goal is "to organize the storage devices into what appears to
be a single storage device".  :class:`VirtualVolume` is that single device:
a flat byte space carved into fixed-size blocks, each stored redundantly
through a :class:`~repro.cluster.cluster.Cluster` (and therefore through
Redundant Share + an erasure code).  Reads and writes may span block
boundaries; unwritten space reads as zeros (sparse semantics).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.cluster import Cluster
from ..exceptions import BlockNotFoundError


class VirtualVolume:
    """A sparse, redundant, byte-addressable volume."""

    def __init__(self, cluster: Cluster, block_size: int = 4096) -> None:
        """Wrap a cluster as one big virtual device.

        Args:
            cluster: The backing cluster (owns placement and redundancy).
            block_size: Bytes per virtual block; every cluster block this
                volume writes has exactly this payload size.
        """
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self._cluster = cluster
        self._block_size = block_size

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return self._block_size

    @property
    def cluster(self) -> Cluster:
        """The backing cluster."""
        return self._cluster

    def _read_block(self, block: int) -> bytes:
        try:
            payload = self._cluster.read(block)
        except BlockNotFoundError:
            return bytes(self._block_size)
        if len(payload) < self._block_size:
            payload = payload + bytes(self._block_size - len(payload))
        return payload

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (zeros where unwritten)."""
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if length == 0:
            return b""
        first = offset // self._block_size
        last = (offset + length - 1) // self._block_size
        chunks = []
        for block in range(first, last + 1):
            chunks.append(self._read_block(block))
        joined = b"".join(chunks)
        start = offset - first * self._block_size
        return joined[start : start + length]

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` (read-modify-write at the edges)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if not data:
            return
        position = 0
        while position < len(data):
            absolute = offset + position
            block = absolute // self._block_size
            within = absolute % self._block_size
            take = min(self._block_size - within, len(data) - position)
            if within == 0 and take == self._block_size:
                payload = data[position : position + take]
            else:
                current = bytearray(self._read_block(block))
                current[within : within + take] = data[
                    position : position + take
                ]
                payload = bytes(current)
            self._cluster.write(block, payload)
            position += take

    def truncate_block(self, block: int) -> None:
        """Drop one block (it reads back as zeros)."""
        try:
            self._cluster.delete(block)
        except BlockNotFoundError:
            pass

    def written_bytes(self) -> int:
        """Bytes held in written blocks (block-granular)."""
        return self._cluster.block_count * self._block_size
