"""Optional-dependency guard shared by every vectorized module.

The library is dependency-free by design; NumPy is a pure *accelerator*
(the ``[fast]`` extra in ``pyproject.toml``).  Every module with a
vectorized code path imports this single guard instead of try/excepting
``numpy`` itself, so the decision — and the test hook to force the pure
Python fallback — lives in exactly one place.

Usage::

    from .._compat import get_numpy

    np = get_numpy()
    if np is None:
        ...  # pure-Python fallback, identical results
    else:
        ...  # vectorized fast path

Setting the environment variable ``REPRO_PURE_PYTHON=1`` (before import)
disables NumPy even when it is installed — used by the equivalence tests
and handy for bisecting suspected fast-path bugs in production.
"""

from __future__ import annotations

import os
from typing import Any, Optional

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

if os.environ.get("REPRO_PURE_PYTHON"):
    _numpy = None

#: The numpy module, or None when unavailable/disabled.  Tests monkeypatch
#: this attribute (not their own import) to force the fallback path.
np: Optional[Any] = _numpy

#: True when the vectorized fast paths are active.
HAVE_NUMPY: bool = np is not None


def get_numpy() -> Optional[Any]:
    """Return the numpy module, or None to request the pure-Python path.

    Always consulted at *call* time (never cached by callers), so
    monkeypatching :data:`repro._compat.np` switches every vectorized
    module at once.
    """
    return np


def env_place_workers() -> int:
    """Worker count requested via ``REPRO_PLACE_WORKERS`` (0 = serial).

    Read at call time so operational tooling (and tests) can flip the
    knob without re-importing; unset, empty or non-integer values mean
    "no sharding", negative values are clamped to 0.
    """
    raw = os.environ.get("REPRO_PLACE_WORKERS", "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return max(value, 0)
