"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subclasses are intentionally
fine-grained: callers of the placement layer typically want to distinguish
"the configuration is infeasible" (a modelling error they must fix) from
"a lookup failed" (an internal invariant violation worth reporting upstream).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A strategy or cluster was built from an invalid configuration.

    Examples: duplicate bin identifiers, non-positive capacities, fewer bins
    than the requested replication degree.
    """


class InfeasibleReplicationError(ConfigurationError):
    """Fairness and redundancy cannot both hold for the given capacities.

    Raised when a strategy is asked to honour raw capacities that violate
    Lemma 2.1 (``k * b_0 > B``) and capacity clipping was explicitly
    disabled.  With clipping enabled (the default) the library adjusts the
    capacities per Algorithm 1 of the paper instead of raising.
    """


class InfeasibleRedundancyError(ConfigurationError):
    """A reconfiguration would leave the cluster unable to honour redundancy.

    Raised by the chaos/recovery layer when a shrink (device removal or
    permanent decommission) would violate Lemma 2.1 (``k * b_0 <= B``) on
    the surviving device set — or leave fewer than ``k`` devices at all —
    so a rebalance onto that set would either silently misplace copies or
    waste capacity the operator did not sign off on.  The attempted
    reconfiguration is rejected before any data moves.
    """


class DeviceUnavailableError(ReproError):
    """An operation needed a device that is currently unreachable.

    Distinct from :class:`DeviceNotFoundError` (the id is unknown) and from
    data loss (:class:`DecodingError`): the device exists and may hold the
    data, but it is crashed, offline, or was unreachable on every permitted
    attempt — e.g. a degraded read that found no live replica across all
    ``k`` positions.
    """


class RepairTimeoutError(ReproError):
    """A repair task exhausted its retry/backoff budget without completing.

    Carries enough context to requeue the share by hand; the recovery
    pipeline records (rather than raises) these by default so one flaky
    device cannot wedge a whole repair campaign.
    """

    def __init__(
        self, device_id: str, address: int, position: int, attempts: int
    ) -> None:
        super().__init__(
            f"repair of share ({address}, {position}) on {device_id!r} "
            f"gave up after {attempts} attempts"
        )
        self.device_id = device_id
        self.address = address
        self.position = position
        self.attempts = attempts


class ServiceError(ReproError):
    """Base class for errors raised by the network service layer.

    Everything under :mod:`repro.service` — the wire codec, the metastore
    and blockstore servers, and the client — raises subclasses of this, so
    a frontend can catch one class for "the service misbehaved" while still
    letting placement/configuration errors propagate unchanged.
    """


class BadFrameError(ServiceError):
    """A wire frame violated the length-prefixed JSON protocol.

    Raised for frames whose body is not valid JSON, frames with a zero
    length prefix, or buffers with trailing bytes after a complete frame.
    The two structural variants — a frame cut short and a frame larger
    than the negotiated maximum — have dedicated subclasses so servers can
    distinguish "peer went away mid-frame" from "peer is abusive".
    """


class TruncatedFrameError(BadFrameError):
    """A frame ended before its declared length was read.

    On a live connection this means the peer disconnected mid-frame; in
    the codec it means the buffer holds an incomplete frame and the caller
    should read more bytes before retrying.
    """


class OversizedFrameError(BadFrameError):
    """A frame declared a length above the protocol's maximum.

    The guard fires on the header alone — before any body bytes are read
    or allocated — so a malicious or corrupt length prefix cannot force
    the server to buffer gigabytes.
    """


class ServiceUnavailableError(ServiceError):
    """No endpoint could serve the request right now.

    The service-layer analogue of :class:`DeviceUnavailableError`: the
    request was well-formed and the data may well exist, but every
    endpoint that could answer — the metastore, or all ``k`` blockstores
    holding a copy position of the block — was unreachable or errored.
    Retrying later may succeed.
    """


class ChecksumMismatchError(ServiceError):
    """A blockstore payload failed checksum verification.

    Raised when stored bytes no longer match the checksum recorded at
    write time (silent corruption), or when a fetched payload does not
    match the checksum the server sent.  Clients treat an affected copy
    position like an unavailable one and fall back to the next.
    """


class PlacementError(ReproError):
    """An individual placement lookup could not be completed.

    This signals a broken internal invariant (e.g. a selection loop that ran
    off the end of the bin list) and should never occur in correct usage.
    """


class CapacityExceededError(ReproError):
    """A storage device was asked to hold more blocks than it can store."""


class DeviceNotFoundError(ReproError):
    """An operation referenced a device id that is not part of the cluster."""


class BlockNotFoundError(ReproError):
    """An operation referenced a block that has never been written."""


class DecodingError(ReproError):
    """An erasure code could not reconstruct the original data.

    Raised when more shares were lost than the code tolerates, or when the
    surviving shares are inconsistent.
    """
