"""CRUSH — Controlled Replication Under Scalable Hashing (Weil et al., SC'06).

The closest relative of the paper's strategies ([12] in its bibliography):
a deterministic, hierarchical, weighted placement function.  A *crush map*
is a tree of buckets; each bucket selects among its items with a
type-specific pseudo-random rule, and replica selection walks the tree once
per replica with collision retries (``choose firstn``).

Implemented bucket types (the SC'06 catalogue minus the tree bucket):

* **uniform** — equal-probability choice; O(1); any weight change reshuffles
  the whole bucket (intended for never-changing rows of identical disks).
* **list** — items are scanned newest-to-oldest and item ``i`` is taken
  with probability ``w_i / W_i`` (its weight over the suffix sum).  This is
  the same hazard-walk idea as LinMirror's primary selection, which is why
  the paper can be seen as the replication-correct generalisation of it.
* **straw2** — every item draws a "straw" of length ``ln(u) / w`` and the
  longest straw wins; exactly weight-proportional and movement-optimal
  under weight changes (this is the modern Ceph default).

Like RUSH (and unlike Redundant Share), CRUSH resolves replica collisions
by *retrying*, which perturbs fairness on small or strongly heterogeneous
pools — the effect the baseline bench quantifies.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from .._compat import get_numpy
from ..exceptions import ConfigurationError, PlacementError
from ..hashing.primitives import as_u64_array, derive_base, unit_from_base_open
from ..types import BinSpec, Placement
from . import kernels, precompute
from .base import BatchPlacement, ReplicationStrategy, record_batch

#: Maximum collision retries per replica before giving up.
MAX_ATTEMPTS = 64

Item = Union["Bucket", str]


class Bucket(abc.ABC):
    """A weighted interior node of the crush map."""

    kind = "abstract"

    def __init__(self, name: str, items: Sequence[Item], weights: Sequence[float]):
        if not items:
            raise ConfigurationError(f"bucket {name!r} has no items")
        if len(items) != len(weights):
            raise ConfigurationError("items and weights must align")
        if any(weight <= 0 for weight in weights):
            raise ConfigurationError("bucket weights must be positive")
        self.name = name
        self.items = list(items)
        self.weights = [float(weight) for weight in weights]

    @property
    def weight(self) -> float:
        """Total weight of the bucket (used by parent buckets)."""
        return sum(self.weights)

    @abc.abstractmethod
    def choose(self, address: int, replica: int, attempt: int) -> Item:
        """Select one item for (ball, replica, retry attempt)."""

    def _base(self, *parts) -> int:
        """Precomputable salt base for this bucket (+ item label parts)."""
        return derive_base("crush", self.name, *parts)

    def _draw(self, address: int, replica: int, attempt: int, *parts) -> float:
        return unit_from_base_open(
            self._base(*parts), address, replica, attempt
        )


class UniformBucket(Bucket):
    """Equal-probability selection (weights must be identical)."""

    kind = "uniform"

    def __init__(self, name: str, items: Sequence[Item], weights: Sequence[float]):
        super().__init__(name, items, weights)
        if len(set(self.weights)) != 1:
            raise ConfigurationError(
                f"uniform bucket {name!r} requires identical weights"
            )

    def choose(self, address: int, replica: int, attempt: int) -> Item:
        base = getattr(self, "_uniform_base", None)
        if base is None:
            base = self._uniform_base = self._base()
        draw = unit_from_base_open(base, address, replica, attempt)
        return self.items[int(draw * len(self.items)) % len(self.items)]


class ListBucket(Bucket):
    """Suffix-weight hazard walk, newest item first."""

    kind = "list"

    def __init__(self, name: str, items: Sequence[Item], weights: Sequence[float]):
        super().__init__(name, items, weights)
        # Walk newest (last appended) to oldest, so precompute suffix sums
        # and per-item salt bases in that traversal order.
        self._order = list(range(len(self.items) - 1, -1, -1))
        self._bases = [
            self._base(item.name if isinstance(item, Bucket) else item)
            for item in self.items
        ]

    def choose(self, address: int, replica: int, attempt: int) -> Item:
        remaining = self.weight
        for index in self._order:
            weight = self.weights[index]
            item = self.items[index]
            if remaining <= weight:
                return item
            draw = unit_from_base_open(
                self._bases[index], address, replica, attempt
            )
            if draw < weight / remaining:
                return item
            remaining -= weight
        return self.items[self._order[-1]]


class Straw2Bucket(Bucket):
    """Longest-straw selection: ``straw = ln(u) / w``; exactly fair."""

    kind = "straw2"

    def __init__(self, name: str, items, weights):
        """Build the bucket and precompute per-item salt bases."""
        super().__init__(name, items, weights)
        self._bases = [
            self._base(item.name if isinstance(item, Bucket) else item)
            for item in self.items
        ]

    def choose(self, address: int, replica: int, attempt: int) -> Item:
        best_item = self.items[0]
        best_straw = -math.inf
        for item, weight, base in zip(self.items, self.weights, self._bases):
            draw = unit_from_base_open(base, address, replica, attempt)
            straw = math.log(draw) / weight  # negative; closer to 0 wins
            if straw > best_straw:
                best_straw = straw
                best_item = item
        return best_item


class TreeBucket(Bucket):
    """Weighted binary-tree descent (the SC'06 tree bucket).

    A balanced binary tree is built over the items; selection walks from
    the root, at each interior node descending left with probability
    ``left subtree weight / node weight``.  Selection costs O(log n), and
    a weight change only re-decides balls whose path crosses the changed
    node — between list (O(n), additions cheap) and straw (O(n), all
    changes cheap) in the CRUSH trade-off table.
    """

    kind = "tree"

    def __init__(self, name: str, items: Sequence[Item], weights: Sequence[float]):
        super().__init__(name, items, weights)
        # The tree is stored as nested tuples:
        #   leaf      -> ("leaf", item_index)
        #   interior  -> ("node", node_id, left, right, left_w, right_w)
        self._node_count = 0
        self._tree = self._build(0, len(self.items))

    def _build(self, lo: int, hi: int):
        if hi - lo == 1:
            return ("leaf", lo)
        mid = (lo + hi) // 2
        node_id = self._node_count
        self._node_count += 1
        left = self._build(lo, mid)
        right = self._build(mid, hi)
        left_weight = sum(self.weights[lo:mid])
        right_weight = sum(self.weights[mid:hi])
        return ("node", node_id, left, right, left_weight, right_weight)

    def choose(self, address: int, replica: int, attempt: int) -> Item:
        bases = getattr(self, "_node_bases", None)
        if bases is None:
            bases = self._node_bases = [
                self._base(node_id) for node_id in range(self._node_count)
            ]
        node = self._tree
        while node[0] == "node":
            _, node_id, left, right, left_weight, right_weight = node
            draw = unit_from_base_open(
                bases[node_id], address, replica, attempt
            )
            if draw * (left_weight + right_weight) < left_weight:
                node = left
            else:
                node = right
        return self.items[node[1]]


_BUCKET_TYPES = {
    "uniform": UniformBucket,
    "list": ListBucket,
    "straw2": Straw2Bucket,
    "tree": TreeBucket,
}


def make_bucket(
    kind: str, name: str, items: Sequence[Item], weights: Sequence[float]
) -> Bucket:
    """Construct a bucket by type name ('uniform', 'list' or 'straw2')."""
    try:
        bucket_cls = _BUCKET_TYPES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown bucket type {kind!r}; choose from {sorted(_BUCKET_TYPES)}"
        ) from None
    return bucket_cls(name, items, weights)


class _StrawBundle:
    """Shareable vector mirror of a flat straw2 crush map.

    The per-item salt bases, weights and bin-rank translation the batch
    engine draws straws from; shared across instances of the same map
    (same fingerprint, same placement epoch) via
    :func:`repro.placement.precompute.shared_cache`.
    """

    __slots__ = ("bases", "weights", "item_ranks")

    def __init__(self, bases, weights, item_ranks) -> None:
        self.bases = bases
        self.weights = weights
        self.item_ranks = item_ranks


class CrushStrategy(ReplicationStrategy):
    """``choose firstn`` replica selection over a crush map."""

    name = "crush"
    kernel = "straw2-descent"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        bucket_type: str = "straw2",
        root: Optional[Bucket] = None,
    ) -> None:
        """Build the strategy.

        Args:
            bins: Flat device list (used when no explicit map is given, and
                for the strategy interface bookkeeping).
            copies: Replication degree.
            namespace: Hash salt prefix (only used for interface parity; the
                map's bucket names already isolate draws).
            bucket_type: Bucket type for the implicit single-level map.
            root: An explicit bucket hierarchy; its leaves must be exactly
                the ids in ``bins``.
        """
        super().__init__(bins, copies, namespace)
        if root is None:
            root = make_bucket(
                bucket_type,
                f"{self._namespace}/root",
                [spec.bin_id for spec in self._bins],
                [float(spec.capacity) for spec in self._bins],
            )
        leaf_ids = set(_collect_leaves(root))
        bin_ids = {spec.bin_id for spec in self._bins}
        if leaf_ids != bin_ids:
            raise ConfigurationError(
                "crush map leaves do not match the bin list: "
                f"missing={sorted(bin_ids - leaf_ids)} "
                f"extra={sorted(leaf_ids - bin_ids)}"
            )
        self._root = root
        self._rank_ids = [spec.bin_id for spec in self._bins]
        self._rank_index = {
            bin_id: rank for rank, bin_id in enumerate(self._rank_ids)
        }
        # The batch engine handles the common flat map — a single straw2
        # bucket over the devices (the implicit default).  Hierarchies and
        # other bucket types keep the generic scalar loop.
        self._flat_straw2 = isinstance(root, Straw2Bucket) and all(
            isinstance(item, str) for item in root.items
        )
        self._epoch = precompute.current_epoch()
        self._vector: Optional[_StrawBundle] = None

    @property
    def root(self) -> Bucket:
        """The crush map root bucket."""
        return self._root

    def _descend(self, address: int, replica: int, attempt: int) -> str:
        node: Item = self._root
        while isinstance(node, Bucket):
            node = node.choose(address, replica, attempt)
        return node

    def place(self, address: int) -> Placement:
        chosen: List[str] = []
        taken = set()
        for replica in range(self._copies):
            device = None
            for attempt in range(MAX_ATTEMPTS):
                candidate = self._descend(address, replica, attempt)
                if candidate not in taken:
                    device = candidate
                    break
            if device is None:
                raise PlacementError(
                    f"crush could not find a distinct device for replica "
                    f"{replica} of ball {address} within {MAX_ATTEMPTS} tries"
                )
            chosen.append(device)
            taken.add(device)
        return tuple(chosen)

    # ------------------------------------------------------------------
    # Batch placement
    # ------------------------------------------------------------------

    def _fingerprint(self) -> tuple:
        """Everything the flat straw2 vector state depends on."""
        return (
            "crush",
            self._namespace,
            self._copies,
            self._root.name,
            tuple(self._root.items),
            tuple(self._root.weights),
        )

    def _ensure_vector_state(self, np) -> _StrawBundle:
        """Attach this instance to its epoch-keyed straw bundle."""
        bundle = self._vector
        if bundle is not None:
            return bundle
        cache = precompute.shared_cache()
        fingerprint = self._fingerprint()
        bundle = cache.get(fingerprint, self._epoch)
        if bundle is None:
            root = self._root
            bundle = cache.put(
                fingerprint,
                self._epoch,
                _StrawBundle(
                    bases=np.asarray(root._bases, dtype=np.uint64),
                    weights=np.asarray(root.weights, dtype=np.float64),
                    item_ranks=np.asarray(
                        [self._rank_index[item] for item in root.items],
                        dtype=np.int64,
                    ),
                ),
            )
        self._vector = bundle
        return bundle

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Vectorized flat straw2 descent with masked retry tail.

        Per replica the whole block shares one folded hash state (the
        address premix and replica fold are reused across retries); each
        retry attempt then re-draws straws *only for the rows whose
        winner collided* — the scalar loop's ``choose firstn`` semantics
        with the per-attempt work shrinking to the collision tail.  Rows
        where any straw race was decided inside
        :data:`~repro.placement.kernels.TIE_GUARD`, and rows that exhaust
        :data:`MAX_ATTEMPTS` (where the scalar loop raises), are settled
        by :meth:`place` so the batch stays element-wise identical —
        including the :class:`PlacementError`.  Hierarchical maps,
        non-straw2 roots and the no-NumPy leg use the generic loop.
        """
        np = get_numpy()
        if np is None or not self._flat_straw2:
            return super()._place_many_serial(addresses)
        bundle = self._ensure_vector_state(np)
        addr = as_u64_array(addresses)
        count = addr.shape[0]
        items = bundle.bases.shape[0]
        columns = np.empty((self._copies, count), dtype=np.int64)
        unsafe_indices: List[int] = []
        for start, stop in kernels.blocks(count):
            mixed = kernels.premix(addr[start:stop])
            block = stop - start
            premixed = kernels.state_matrix(bundle.bases, mixed)
            taken = np.zeros((block, items), dtype=bool)
            unsafe = np.zeros(block, dtype=bool)
            for replica in range(self._copies):
                states = kernels.fold_salt(premixed, replica)
                pending = np.arange(block)
                out = np.zeros(block, dtype=np.int64)
                for attempt in range(MAX_ATTEMPTS):
                    if pending.size == 0:
                        break
                    draws = kernels.open_draws_from_state(
                        kernels.fold_salt(states[pending], attempt)
                    )
                    straws = kernels.straw2_score_matrix(
                        bundle.weights, draws
                    )
                    winners, attempt_unsafe = kernels.argmax_with_guard(
                        straws
                    )
                    unsafe[pending[attempt_unsafe]] = True
                    collided = taken[pending, winners]
                    accepted = pending[~collided]
                    out[accepted] = winners[~collided]
                    taken[accepted, winners[~collided]] = True
                    pending = pending[collided]
                if pending.size:
                    # Exhausted retries: the scalar loop raises here, so
                    # route these rows through it below.
                    unsafe[pending] = True
                columns[replica, start:stop] = bundle.item_ranks[out]
            unsafe_indices.extend(start + np.flatnonzero(unsafe))
        for index in unsafe_indices:
            # Near-tie or exhaustion: the scalar walk is the authority
            # (and raises PlacementError exactly where it would).
            placement = self.place(int(addresses[index]))
            for position, bin_id in enumerate(placement):
                columns[position, index] = self._rank_index[bin_id]
        kernels.record_tie_recomputes(self.kernel, len(unsafe_indices))
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, count, kernel=self.kernel
            )
        return BatchPlacement(self._rank_ids, list(columns))


def _collect_leaves(node: Item) -> List[str]:
    if isinstance(node, Bucket):
        leaves: List[str] = []
        for item in node.items:
            leaves.extend(_collect_leaves(item))
        return leaves
    return [node]


class ChooseleafCrush(ReplicationStrategy):
    """CRUSH ``chooseleaf firstn`` over failure domains.

    Replica ``r`` first selects a rack (distinct from earlier replicas'
    racks, with retries), then descends to one device inside it — the
    standard way CRUSH spreads copies across failure domains.  The
    baseline counterpart of
    :class:`repro.core.hierarchical.HierarchicalRedundantShare`.
    """

    name = "crush-chooseleaf"

    def __init__(
        self,
        racks: Dict[str, Sequence[BinSpec]],
        copies: int = 2,
        namespace: str = "",
        bucket_type: str = "straw2",
    ) -> None:
        """Build the two-level map.

        Args:
            racks: Failure domains: rack name -> device specs.
            copies: Replication degree (needs at least as many racks).
            namespace: Hash salt prefix.
            bucket_type: Bucket type for both levels.
        """
        if len(racks) < copies:
            raise ConfigurationError(
                f"need at least k={copies} racks, got {len(racks)}"
            )
        self._rack_buckets: Dict[str, Bucket] = {}
        rack_weights = []
        rack_names = []
        all_bins: List[BinSpec] = []
        for rack_name, devices in racks.items():
            devices = list(devices)
            if not devices:
                raise ConfigurationError(f"rack {rack_name!r} has no devices")
            bucket = make_bucket(
                bucket_type,
                f"{namespace or self.name}/rack/{rack_name}",
                [spec.bin_id for spec in devices],
                [float(spec.capacity) for spec in devices],
            )
            self._rack_buckets[rack_name] = bucket
            rack_names.append(rack_name)
            rack_weights.append(bucket.weight)
            all_bins.extend(devices)
        super().__init__(all_bins, copies, namespace)
        self._root = make_bucket(
            bucket_type,
            f"{self._namespace}/root",
            rack_names,
            rack_weights,
        )
        self._rack_of = {
            spec.bin_id: rack_name
            for rack_name, devices in racks.items()
            for spec in devices
        }

    def rack_of(self, device_id: str) -> str:
        """Failure domain of a device."""
        return self._rack_of[device_id]

    def place(self, address: int) -> Placement:
        chosen_devices: List[str] = []
        chosen_racks = set()
        for replica in range(self._copies):
            rack = None
            for attempt in range(MAX_ATTEMPTS):
                candidate = self._root.choose(address, replica, attempt)
                if candidate not in chosen_racks:
                    rack = candidate
                    break
            if rack is None:
                raise PlacementError(
                    f"chooseleaf found no distinct rack for replica "
                    f"{replica} of ball {address}"
                )
            chosen_racks.add(rack)
            device = self._rack_buckets[rack].choose(address, replica, 0)
            chosen_devices.append(device)  # type: ignore[arg-type]
        return tuple(chosen_devices)


def two_level_map(
    racks: Dict[str, Sequence[BinSpec]],
    rack_bucket: str = "straw2",
    device_bucket: str = "straw2",
) -> Tuple[Bucket, List[BinSpec]]:
    """Build a rack/device hierarchy and the flat bin list to go with it.

    Returns:
        ``(root, bins)`` ready to pass to :class:`CrushStrategy`.
    """
    rack_items: List[Item] = []
    rack_weights: List[float] = []
    all_bins: List[BinSpec] = []
    for rack_name, devices in racks.items():
        devices = list(devices)
        if not devices:
            raise ConfigurationError(f"rack {rack_name!r} has no devices")
        bucket = make_bucket(
            device_bucket,
            f"rack/{rack_name}",
            [spec.bin_id for spec in devices],
            [float(spec.capacity) for spec in devices],
        )
        rack_items.append(bucket)
        rack_weights.append(bucket.weight)
        all_bins.extend(devices)
    root = make_bucket("straw2" if rack_bucket == "straw2" else rack_bucket,
                       "root", rack_items, rack_weights)
    return root, all_bins
