"""Name-keyed registry of the batch-placeable replication strategies.

One place that knows how to build every strategy with a uniform
``(bins, copies)`` constructor shape — the CLI, the throughput bench and
the perf smoke job all iterate the same table instead of each keeping a
private (and inevitably diverging) list.  Strategies whose constructors
need extra topology (RUSH wants sub-clusters, the hierarchical variant
wants racks) are deliberately absent: they cannot be built from a flat
bin list.

:func:`create` is the **canonical public factory**: every consumer that
builds a strategy from a name — the CLI, ``repro stats``, ``repro
chaos``, the throughput bench — goes through it, so name resolution,
alias handling and fixed-``copies`` strategies behave identically
everywhere.  The older :func:`build_strategy` spelling is kept as a
deprecated shim.

Each entry records whether the strategy has a *vectorized* ``place_many``
engine; the bench uses that flag to pick its address population and to
assert that vectorization never loses to the scalar loop.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..types import BinSpec
from .base import ReplicationStrategy

Factory = Callable[[Sequence[BinSpec], int], ReplicationStrategy]


@dataclass(frozen=True)
class StrategyEntry:
    """How to build one registered strategy and what to expect of it."""

    name: str
    factory: Factory
    #: Replication degree baked into the algorithm (LinMirror is k = 2 by
    #: definition); ``None`` means the ``copies`` argument is honoured.
    fixed_copies: Optional[int] = None
    #: True when ``place_many`` runs a NumPy engine rather than the
    #: generic per-address loop (given NumPy is importable).
    vectorized: bool = False
    #: Shared-kernel family the batch engine is built on (see
    #: :mod:`repro.placement.kernels`); mirrors
    #: :attr:`ReplicationStrategy.kernel` so reports need not build an
    #: instance to label the engine.
    kernel: Optional[str] = None
    aliases: Tuple[str, ...] = field(default=())

    def build(
        self, bins: Sequence[BinSpec], copies: int
    ) -> ReplicationStrategy:
        """Instantiate for ``bins``, honouring a fixed replication degree."""
        return self.factory(bins, self.effective_copies(copies))

    def effective_copies(self, copies: int) -> int:
        """The replication degree actually used for a requested ``copies``."""
        return self.fixed_copies if self.fixed_copies is not None else copies


def _build_registry() -> Dict[str, StrategyEntry]:
    # Imported lazily so ``repro.placement`` does not pull in ``repro.core``
    # at package-import time (core imports placement, not vice versa).
    from ..core.balanced_rendezvous import BalancedRendezvous
    from ..core.classic import ClassicLinMirror
    from ..core.fast_variant import FastRedundantShare
    from ..core.redundant_share import LinMirror, RedundantShare
    from .crush import CrushStrategy
    from .striping import WeightedStripingStrategy
    from .trivial import TrivialReplication

    entries = [
        StrategyEntry(
            "redundant-share",
            lambda bins, copies: RedundantShare(bins, copies=copies),
            vectorized=True,
            kernel=RedundantShare.kernel,
        ),
        StrategyEntry(
            "lin-mirror",
            lambda bins, copies: LinMirror(bins),
            fixed_copies=2,
            vectorized=True,
            kernel=LinMirror.kernel,
        ),
        StrategyEntry(
            "fast-redundant-share",
            lambda bins, copies: FastRedundantShare(bins, copies=copies),
            vectorized=True,
            kernel=FastRedundantShare.kernel,
            aliases=("fast",),
        ),
        StrategyEntry(
            "trivial",
            lambda bins, copies: TrivialReplication(bins, copies=copies),
            vectorized=True,
            kernel=TrivialReplication.kernel,
        ),
        StrategyEntry(
            "classic-lin-mirror",
            lambda bins, copies: ClassicLinMirror(bins),
            fixed_copies=2,
        ),
        StrategyEntry(
            "crush",
            lambda bins, copies: CrushStrategy(bins, copies=copies),
            vectorized=True,
            kernel=CrushStrategy.kernel,
        ),
        StrategyEntry(
            "weighted-striping",
            lambda bins, copies: WeightedStripingStrategy(bins, copies=copies),
            vectorized=True,
            kernel=WeightedStripingStrategy.kernel,
            aliases=("striping",),
        ),
        StrategyEntry(
            "balanced-rendezvous",
            lambda bins, copies: BalancedRendezvous(bins, copies=copies),
            vectorized=True,
            kernel=BalancedRendezvous.kernel,
        ),
    ]
    return {entry.name: entry for entry in entries}


_REGISTRY: Optional[Dict[str, StrategyEntry]] = None


def registry() -> Dict[str, StrategyEntry]:
    """The canonical-name → entry table (built on first use, then cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def registered_strategies() -> List[StrategyEntry]:
    """All entries in registration order."""
    return list(registry().values())


def strategy_names(include_aliases: bool = False) -> List[str]:
    """Accepted names, canonical first, optionally with aliases."""
    names: List[str] = []
    for entry in registered_strategies():
        names.append(entry.name)
        if include_aliases:
            names.extend(entry.aliases)
    return names


def lookup(name: str) -> StrategyEntry:
    """Resolve a canonical name or alias.

    Raises:
        KeyError: with the list of accepted names when unknown.
    """
    table = registry()
    if name in table:
        return table[name]
    for entry in table.values():
        if name in entry.aliases:
            return entry
    raise KeyError(
        f"unknown strategy {name!r}; choose from "
        f"{sorted(strategy_names(include_aliases=True))}"
    )


def create(
    name: str, bins: Sequence[BinSpec], *, copies: int = 2
) -> ReplicationStrategy:
    """Build the strategy registered under ``name`` (or an alias).

    This is the canonical construction path for every name-addressed
    strategy: it resolves aliases, honours fixed replication degrees
    (``lin-mirror`` is k = 2 whatever was requested) and builds with the
    registry's uniform ``(bins, copies)`` shape.  Prefer it over importing
    and instantiating strategy classes ad hoc — call sites built through
    the registry keep working when entries are renamed or re-parameterised.

    Args:
        name: Canonical strategy name or alias (see :func:`strategy_names`).
        bins: Device specs to place over.
        copies: Requested replication degree ``k`` (keyword-only; ignored
            by strategies with a fixed degree).

    Raises:
        KeyError: for unknown names, listing the accepted ones.
        ConfigurationError: if the entry rejects the bins/copies combination.
    """
    return lookup(name).build(bins, copies)


def build_strategy(
    name: str, bins: Sequence[BinSpec], copies: int
) -> ReplicationStrategy:
    """Deprecated spelling of :func:`create`.

    .. deprecated::
        Use ``create(name, bins, copies=...)`` — the keyword-only signature
        the rest of the library standardised on.
    """
    warnings.warn(
        "build_strategy() is deprecated; use "
        "repro.placement.registry.create(name, bins, copies=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return create(name, bins, copies=copies)
