"""Name-keyed registry of the batch-placeable replication strategies.

One place that knows how to build every strategy from a name, a flat bin
list and a replication degree — the CLI, the throughput bench and the
perf smoke job all iterate the same table instead of each keeping a
private (and inevitably diverging) list.  Strategies whose constructors
need extra topology (RUSH wants sub-clusters, the hierarchical variant
wants racks) are deliberately absent: they cannot be built from a flat
bin list.

Two things make the table expressive enough for the full zoo:

* **Typed per-strategy options.**  Each :class:`StrategyEntry` declares
  an :class:`~repro.options.OptionSpec` schema for whatever its
  constructor needs beyond ``(bins, copies)`` — RPDP's per-device
  service rates, Sequential Checking's device generations, weighted
  striping's pattern resolution.  :func:`create` validates keyword
  options against the schema (unknown keys, wrong types and options
  passed to a strategy that declares none all raise
  :class:`~repro.exceptions.ConfigurationError`) and fills defaults, so
  no consumer needs a private construction path.

* **Capability flags.**  ``supports_scale_out``, ``movement_class`` and
  ``heterogeneity_aware`` describe what each strategy guarantees, so
  sweeps (the trade-off bench, ``repro compare``) can select and label
  contenders without hard-coding knowledge about them.

:func:`create` is the **canonical public factory**: every consumer that
builds a strategy from a name — the CLI, ``repro stats``, ``repro
chaos``, ``repro serve``, the benches — goes through it, so name
resolution, alias handling, fixed-``copies`` strategies and option
validation behave identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..exceptions import ConfigurationError
from ..options import OptionSpec, resolve_options
from ..types import BinSpec
from .base import ReplicationStrategy

#: Factories receive the *resolved* options dict (defaults filled,
#: values validated) as their third argument.
Factory = Callable[
    [Sequence[BinSpec], int, Mapping[str, Any]], ReplicationStrategy
]

#: Accepted ``movement_class`` values, best to worst: ``zero`` (adding
#: devices moves nothing), ``bounded`` (the paper's competitive-factor
#: family), ``proportional`` (hash-based ~1/n churn), ``full`` (the
#: pattern is rebuilt; nearly everything moves).
MOVEMENT_CLASSES = ("zero", "bounded", "proportional", "full")


@dataclass(frozen=True)
class StrategyEntry:
    """How to build one registered strategy and what to expect of it."""

    name: str
    factory: Factory
    #: Replication degree baked into the algorithm (LinMirror is k = 2 by
    #: definition); ``None`` means the ``copies`` argument is honoured.
    fixed_copies: Optional[int] = None
    #: True when ``place_many`` runs a NumPy engine rather than the
    #: generic per-address loop (given NumPy is importable).
    vectorized: bool = False
    #: Shared-kernel family the batch engine is built on (see
    #: :mod:`repro.placement.kernels`); mirrors
    #: :attr:`ReplicationStrategy.kernel` so reports need not build an
    #: instance to label the engine.
    kernel: Optional[str] = None
    aliases: Tuple[str, ...] = field(default=())
    #: Typed schema of the strategy's extra constructor parameters;
    #: empty means ``create`` accepts no keyword options for this entry.
    options: Tuple[OptionSpec, ...] = field(default=())
    #: Whether adding devices to an existing deployment is a supported
    #: operation, i.e. movement stays within ``movement_class`` instead
    #: of degenerating to a rebuild.
    supports_scale_out: bool = True
    #: Expected data movement when a device is added (see
    #: :data:`MOVEMENT_CLASSES`).
    movement_class: str = "proportional"
    #: Whether the strategy targets the Lemma 2.2 clipped fair shares on
    #: heterogeneous bins (the trivial baseline provably misses them,
    #: Lemma 2.4).
    heterogeneity_aware: bool = True

    def __post_init__(self) -> None:
        if self.movement_class not in MOVEMENT_CLASSES:
            raise ValueError(
                f"movement_class must be one of {MOVEMENT_CLASSES}, "
                f"got {self.movement_class!r}"
            )

    def build(
        self,
        bins: Sequence[BinSpec],
        copies: int,
        options: Optional[Mapping[str, Any]] = None,
    ) -> ReplicationStrategy:
        """Instantiate for ``bins``, honouring the fixed degree and schema.

        ``options`` are validated against :attr:`options` (defaults
        filled) before the factory runs; see
        :func:`repro.options.resolve_options` for the error contract.
        """
        resolved = resolve_options(
            self.options, options, f"strategy {self.name!r}"
        )
        return self.factory(bins, self.effective_copies(copies), resolved)

    def effective_copies(self, copies: int) -> int:
        """The replication degree actually used for a requested ``copies``."""
        return self.fixed_copies if self.fixed_copies is not None else copies


def _build_registry() -> Dict[str, StrategyEntry]:
    # Imported lazily so ``repro.placement`` does not pull in ``repro.core``
    # at package-import time (core imports placement, not vice versa).
    from ..core.balanced_rendezvous import BalancedRendezvous
    from ..core.classic import ClassicLinMirror
    from ..core.fast_variant import FastRedundantShare
    from ..core.redundant_share import LinMirror, RedundantShare
    from ..core.sequential_checking import SequentialChecking
    from .crush import CrushStrategy
    from .rpdp import ResidualPerformancePlacement
    from .striping import WeightedStripingStrategy
    from .trivial import TrivialReplication

    entries = [
        StrategyEntry(
            "redundant-share",
            lambda bins, copies, opts: RedundantShare(bins, copies=copies),
            vectorized=True,
            kernel=RedundantShare.kernel,
            movement_class="bounded",
        ),
        StrategyEntry(
            "lin-mirror",
            lambda bins, copies, opts: LinMirror(bins),
            fixed_copies=2,
            vectorized=True,
            kernel=LinMirror.kernel,
            movement_class="bounded",
        ),
        StrategyEntry(
            "fast-redundant-share",
            lambda bins, copies, opts: FastRedundantShare(
                bins, copies=copies
            ),
            vectorized=True,
            kernel=FastRedundantShare.kernel,
            aliases=("fast",),
            movement_class="bounded",
        ),
        StrategyEntry(
            "trivial",
            lambda bins, copies, opts: TrivialReplication(
                bins, copies=copies
            ),
            vectorized=True,
            kernel=TrivialReplication.kernel,
            movement_class="proportional",
            heterogeneity_aware=False,
        ),
        StrategyEntry(
            "classic-lin-mirror",
            lambda bins, copies, opts: ClassicLinMirror(bins),
            fixed_copies=2,
            movement_class="bounded",
        ),
        StrategyEntry(
            "crush",
            lambda bins, copies, opts: CrushStrategy(bins, copies=copies),
            vectorized=True,
            kernel=CrushStrategy.kernel,
            movement_class="proportional",
        ),
        StrategyEntry(
            "weighted-striping",
            lambda bins, copies, opts: WeightedStripingStrategy(
                bins, copies=copies, resolution=opts["resolution"]
            ),
            vectorized=True,
            kernel=WeightedStripingStrategy.kernel,
            aliases=("striping",),
            options=(
                OptionSpec(
                    "resolution",
                    "int",
                    default=64,
                    minimum=1,
                    doc="average pattern slots per disk (fairness/memory "
                    "trade-off)",
                ),
            ),
            supports_scale_out=False,
            movement_class="full",
        ),
        StrategyEntry(
            "balanced-rendezvous",
            lambda bins, copies, opts: BalancedRendezvous(
                bins, copies=copies
            ),
            vectorized=True,
            kernel=BalancedRendezvous.kernel,
            movement_class="proportional",
        ),
        StrategyEntry(
            "sequential-checking",
            lambda bins, copies, opts: SequentialChecking(
                bins,
                copies=copies,
                generations=opts["generations"],
                overflow=opts["overflow"],
            ),
            vectorized=True,
            kernel=SequentialChecking.kernel,
            aliases=("seq-check",),
            options=(
                OptionSpec(
                    "generations",
                    "ints",
                    default=None,
                    minimum=1,
                    doc="device-group sizes in addition order (must sum to "
                    "the bin count); default: one generation per device",
                ),
                OptionSpec(
                    "overflow",
                    "str",
                    default="wrap",
                    choices=("wrap", "error"),
                    doc="what to do with addresses beyond the capacity "
                    "limit: fold them back into the address space, or "
                    "raise",
                ),
            ),
            movement_class="zero",
        ),
        StrategyEntry(
            "rpdp",
            lambda bins, copies, opts: ResidualPerformancePlacement(
                bins,
                copies=copies,
                service_rates=opts["service_rates"],
                clip_rates=opts["clip_rates"],
            ),
            vectorized=True,
            kernel=ResidualPerformancePlacement.kernel,
            aliases=("residual-performance",),
            options=(
                OptionSpec(
                    "service_rates",
                    "weights",
                    default=None,
                    doc="per-device service rates, positional or keyed by "
                    "bin id; default: the capacities",
                ),
                OptionSpec(
                    "clip_rates",
                    "bool",
                    default=True,
                    doc="clip rate shares at the Lemma 2.2 water-fill "
                    "limit before weighting draws",
                ),
            ),
            movement_class="proportional",
        ),
    ]
    return {entry.name: entry for entry in entries}


_REGISTRY: Optional[Dict[str, StrategyEntry]] = None


def registry() -> Dict[str, StrategyEntry]:
    """The canonical-name → entry table (built on first use, then cached)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def registered_strategies() -> List[StrategyEntry]:
    """All entries in registration order."""
    return list(registry().values())


def strategy_names(include_aliases: bool = False) -> List[str]:
    """Accepted names, canonical first, optionally with aliases.

    Sweeps (benches, ``repro compare``) must iterate the default
    alias-free form: every canonical name appears exactly once, so no
    strategy is run twice under two spellings.
    """
    names: List[str] = []
    for entry in registered_strategies():
        names.append(entry.name)
        if include_aliases:
            names.extend(entry.aliases)
    return names


def lookup(name: str) -> StrategyEntry:
    """Resolve a canonical name or alias.

    Raises:
        ConfigurationError: when unknown, listing the canonical names
            (each once — aliases resolve but are not advertised as
            distinct strategies).
    """
    table = registry()
    if name in table:
        return table[name]
    for entry in table.values():
        if name in entry.aliases:
            return entry
    raise ConfigurationError(
        f"unknown strategy {name!r}; choose from {sorted(strategy_names())}"
    )


def create(
    name: str,
    bins: Sequence[BinSpec],
    *,
    copies: int = 2,
    **options: Any,
) -> ReplicationStrategy:
    """Build the strategy registered under ``name`` (or an alias).

    This is the canonical construction path for every name-addressed
    strategy: it resolves aliases, honours fixed replication degrees
    (``lin-mirror`` is k = 2 whatever was requested), validates keyword
    options against the entry's typed schema and builds with the
    registry's uniform shape.  Prefer it over importing and
    instantiating strategy classes ad hoc — call sites built through
    the registry keep working when entries are renamed or
    re-parameterised.

    Args:
        name: Canonical strategy name or alias (see :func:`strategy_names`).
        bins: Device specs to place over.
        copies: Requested replication degree ``k`` (keyword-only; ignored
            by strategies with a fixed degree).
        **options: Per-strategy options declared by the entry's schema,
            e.g. ``create("rpdp", bins, copies=3, service_rates=(4, 2, 1))``
            or ``create("weighted-striping", bins, resolution=128)``.

    Raises:
        ConfigurationError: for unknown names (listing the accepted
            ones), unknown or ill-typed options, or if the entry rejects
            the bins/copies combination.
    """
    return lookup(name).build(bins, copies, options)
