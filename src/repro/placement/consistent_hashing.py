"""Consistent hashing (Karger et al., STOC 1997) with capacity weighting.

Each bin places ``points_per_unit * capacity_units`` virtual points on the
unit circle; a ball lands on the owner of its hash position's clockwise
successor point.  With ``P`` points per bin the share of a bin concentrates
around its weight with relative deviation ``O(1/sqrt(P))`` — only
*approximately* fair, which is one of the motivations for Share and for the
paper's own strategies (their data structures would need ``n log n`` bits for
comparable precision, cf. Section 1.2).

Adaptivity is the strategy's strength: adding a bin steals only the arcs the
new points cover (1-competitive); removing a bin reassigns only its own arcs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..hashing.primitives import derive_base, unit_from_base, unit_interval
from ..hashing.rings import HashRing
from ..types import BinSpec
from .base import SingleCopyPlacer, WeightedPlacer


class ConsistentHashingPlacer(SingleCopyPlacer):
    """Weighted consistent hashing over a configuration of bins."""

    name = "consistent-hashing"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        namespace: str = "",
        points_per_bin: int = 128,
        weight_points: bool = True,
    ) -> None:
        """Build the ring.

        Args:
            bins: Configuration snapshot.
            namespace: Hash salt prefix.
            points_per_bin: Virtual points for a bin of *average* capacity.
            weight_points: If true (default), scale each bin's point count by
                its capacity relative to the average — the standard way to
                support non-uniform bins.  If false, all bins get the same
                number of points (the original uniform scheme).
        """
        super().__init__(bins, namespace)
        if points_per_bin < 1:
            raise ValueError("points_per_bin must be >= 1")
        self._ring = HashRing(self._namespace)
        average = sum(spec.capacity for spec in self._bins) / len(self._bins)
        for spec in self._bins:
            if weight_points:
                points = max(1, round(points_per_bin * spec.capacity / average))
            else:
                points = points_per_bin
            self._ring.add_owner(spec.bin_id, points)
        self._weight_points = weight_points
        self._ball_base = derive_base(self._namespace, "ball")

    @property
    def ring(self) -> HashRing:
        """The underlying hash ring (read-only use intended)."""
        return self._ring

    def place(self, address: int) -> str:
        return self._ring.successor(unit_from_base(self._ball_base, address))

    def place_successors(self, address: int, count: int) -> List[str]:
        """First ``count`` distinct owners clockwise — the classic replica
        chain used by DHT storage systems (a *trivial* replication in the
        paper's sense)."""
        return self._ring.successors(
            unit_from_base(self._ball_base, address), count
        )

    def expected_shares(self) -> Dict[str, float]:
        """Exact arc shares of the concrete ring (not the ideal weights)."""
        return dict(self._ring.arc_length())  # type: ignore[arg-type]


class RingWeightedPlacer(WeightedPlacer):
    """(ids, weights) consistent-hashing selector for use as placeonecopy.

    Provided for the ablation benches: compared with rendezvous it trades
    exactness of fairness for O(log n) lookups.
    """

    def __init__(
        self,
        ids: Sequence[str],
        weights: Sequence[float],
        namespace: str,
        points_per_unit: int = 64,
    ) -> None:
        if len(ids) != len(weights) or not ids:
            raise ValueError("ids and weights must be equal-length, non-empty")
        positive = [(i, w) for i, w in zip(ids, weights) if w > 0]
        if not positive:
            raise ValueError("at least one weight must be positive")
        self._namespace = namespace
        self._ring = HashRing(namespace)
        average = sum(w for _, w in positive) / len(positive)
        for bin_id, weight in positive:
            self._ring.add_owner(bin_id, max(1, round(points_per_unit * weight / average)))

    def place(self, address: int) -> str:
        return self._ring.successor(unit_interval(self._namespace, "ball", address))


def make_ring_placer(
    ids: Sequence[str], weights: Sequence[float], namespace: str
) -> RingWeightedPlacer:
    """Factory with the ``WeightedPlacerFactory`` signature."""
    return RingWeightedPlacer(ids, weights, namespace)
