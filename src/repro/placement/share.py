"""The Share strategy (Brinkmann, Salzwedel, Scheideler — SPAA 2002).

Share reduces *non-uniform* placement to a uniform sub-problem.  Every bin
``i`` claims an interval of length ``stretch * c_i`` on the unit circle,
starting at a hash of its name.  A ball hashes to a point ``x``; the bins
whose intervals cover ``x`` form the candidate set, and a uniform
sub-strategy (here: rendezvous keyed on ball and bin) picks the winner.

Interval lengths above 1 wrap: such a bin covers every point
``floor(length)`` times (its *multiplicity*) plus one fractional arc, and
the candidate rendezvous weights each bin by its local cover count.  With
a logarithmic stretch factor every point is covered w.h.p. and cover
counts concentrate around ``stretch``, which makes Share fair up to a
``(1 + eps)`` factor and (amortized) ``(1 + eps)``-competitive for
adaptivity — the state of the art for heterogeneous bins *without*
replication that the paper builds on (its ``placeonecopy`` can be exactly
this strategy).

The implementation precomputes the elementary segments of the circle (the
arcs between consecutive interval endpoints) together with their covering
bin sets, so a lookup is a binary search plus a small weighted rendezvous.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Sequence

from ..hashing.primitives import (
    derive_base,
    unit_from_base,
    unit_from_base_open,
)
from ..types import BinSpec
from .base import SingleCopyPlacer
from .rendezvous import rendezvous_score


def default_stretch(bin_count: int) -> float:
    """The logarithmic stretch factor suggested by the Share analysis."""
    return max(3.0, 2.0 * math.log(bin_count + 1.0))


class SharePlacer(SingleCopyPlacer):
    """Share over a configuration of bins."""

    name = "share"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        namespace: str = "",
        stretch: float = 0.0,
    ) -> None:
        """Build the segment index.

        Args:
            bins: Configuration snapshot.
            namespace: Hash salt prefix.
            stretch: Interval stretch factor; 0 selects
                :func:`default_stretch` for the bin count.
        """
        super().__init__(bins, namespace)
        # Imported here to avoid a cycle (share_weighted uses
        # default_stretch from this module).
        from .share_weighted import build_segments

        self._stretch = stretch if stretch > 0 else default_stretch(len(bins))
        total = sum(spec.capacity for spec in self._bins)
        self._boundaries, self._covers, self._multiplicity = build_segments(
            [(spec.bin_id, spec.capacity / total) for spec in self._bins],
            self._namespace,
            self._stretch,
        )
        self._ball_base = derive_base(self._namespace, "ball")
        self._pick_bases = {
            spec.bin_id: derive_base(self._namespace, "pick", spec.bin_id)
            for spec in self._bins
        }

    @property
    def stretch(self) -> float:
        """The stretch factor in effect."""
        return self._stretch

    def _candidates(self, position: float) -> Dict[str, float]:
        from .share_weighted import local_weights

        index = bisect.bisect_right(self._boundaries, position) - 1
        return local_weights(self._covers[index], self._multiplicity)

    def place(self, address: int) -> str:
        position = unit_from_base(self._ball_base, address)
        candidates = self._candidates(position)
        if not candidates:
            # Uncovered point (probability vanishes with logarithmic
            # stretch): fall back to capacity-weighted rendezvous over all
            # bins so the lookup still succeeds deterministically.
            candidates = {
                spec.bin_id: float(spec.capacity) for spec in self._bins
            }
        best_id = None
        best_score = -math.inf
        for bin_id, weight in candidates.items():
            uniform = unit_from_base_open(self._pick_bases[bin_id], address)
            score = rendezvous_score(weight, uniform)
            if score > best_score:
                best_score = score
                best_id = bin_id
        assert best_id is not None
        return best_id

    def expected_shares(self) -> Dict[str, float]:
        """Exact expected shares of this concrete instance.

        Computed segment by segment: a ball is uniform on the circle, and
        within a segment the weighted rendezvous picks each candidate with
        probability proportional to its local cover count.  Uncovered
        segments fall back to capacity-proportional choice.
        """
        from .share_weighted import local_weights

        shares: Dict[str, float] = {spec.bin_id: 0.0 for spec in self._bins}
        total_capacity = sum(spec.capacity for spec in self._bins)
        boundaries = list(self._boundaries) + [1.0]
        for index, cover in enumerate(self._covers):
            length = boundaries[index + 1] - boundaries[index]
            if length <= 0:
                continue
            candidates = local_weights(cover, self._multiplicity)
            if candidates:
                weight_total = sum(candidates.values())
                for bin_id, weight in candidates.items():
                    shares[bin_id] += length * weight / weight_total
            else:
                for spec in self._bins:
                    shares[spec.bin_id] += (
                        length * spec.capacity / total_capacity
                    )
        return shares

    def coverage_gap(self) -> float:
        """Total circle length not covered by any interval (fallback zone)."""
        if self._multiplicity:
            return 0.0
        gap = 0.0
        boundaries = list(self._boundaries) + [1.0]
        for index, cover in enumerate(self._covers):
            if not cover:
                gap += boundaries[index + 1] - boundaries[index]
        return gap
