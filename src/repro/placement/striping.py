"""RAID-style pattern striping — the classic pre-calculated layouts.

RAID ([10] in the paper) stripes blocks across all disks in a fixed
rotating pattern.  On *homogeneous* disks this is perfectly fair with zero
metadata, which is why small arrays use it; the paper's two criticisms,
both reproduced here, are

* **heterogeneity** — a fixed pattern cannot give a larger disk a larger
  share (``StripingStrategy`` over unequal disks is measurably unfair
  unless the AdaptRaid-style weighted pattern of
  :class:`WeightedStripingStrategy` is used, cf. [4]), and
* **adaptivity** — the pattern depends on the disk count, so adding one
  disk relocates nearly *all* blocks (the benches show movement close to
  100%, against < 2 b_i for Redundant Share).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..exceptions import ConfigurationError
from ..types import BinSpec, Placement
from .base import ReplicationStrategy


class StripingStrategy(ReplicationStrategy):
    """Classic rotating stripe: copy ``i`` of block ``a`` on disk
    ``(a * k + i) mod n``.

    Consecutive placement guarantees the k copies are distinct whenever
    ``k <= n``; the rotation balances load perfectly on homogeneous disks.
    """

    name = "striping"

    def place(self, address: int) -> Placement:
        count = len(self._bins)
        start = (address * self._copies) % count
        return tuple(
            self._bins[(start + offset) % count].bin_id
            for offset in range(self._copies)
        )

    def expected_shares(self) -> Dict[str, float]:
        """Uniform — the fixed pattern ignores capacities entirely."""
        share = 1.0 / len(self._bins)
        return {spec.bin_id: share for spec in self._bins}


class WeightedStripingStrategy(ReplicationStrategy):
    """AdaptRaid-style striping: larger disks appear in more pattern rows.

    A smooth weighted round-robin sequence is precomputed in which disk
    ``i`` occupies a number of slots proportional to its capacity; the k
    copies of block ``a`` occupy the next k *distinct* disks starting at
    pattern slot ``a * k mod L``.  Fairness approaches capacity proportions
    as the pattern resolution grows; adaptivity remains as poor as RAID's.
    """

    name = "weighted-striping"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        resolution: int = 64,
    ) -> None:
        """Build the pattern.

        Args:
            bins: The disks.
            copies: Replication degree.
            namespace: Unused (striping consumes no hashes); kept for
                interface parity.
            resolution: Average pattern slots per disk; higher is fairer
                and costs memory (``n * resolution`` slots).
        """
        super().__init__(bins, copies, namespace)
        if resolution < 1:
            raise ConfigurationError("resolution must be >= 1")
        total = sum(spec.capacity for spec in self._bins)
        slots = max(len(self._bins), len(self._bins) * resolution)
        # Smooth weighted round-robin (interleaved, not blocked): at every
        # slot, hand the slot to the disk with the largest accumulated
        # credit.  Keeps any window of the pattern close to proportional.
        credits = {spec.bin_id: 0.0 for spec in self._bins}
        rates = {
            spec.bin_id: spec.capacity / total for spec in self._bins
        }
        pattern: List[str] = []
        for _ in range(slots):
            for bin_id in credits:
                credits[bin_id] += rates[bin_id]
            winner = max(credits, key=lambda bin_id: (credits[bin_id], bin_id))
            credits[winner] -= 1.0
            pattern.append(winner)
        self._pattern = pattern

    @property
    def pattern_length(self) -> int:
        """Number of slots in the precomputed pattern."""
        return len(self._pattern)

    def place(self, address: int) -> Placement:
        length = len(self._pattern)
        start = (address * self._copies) % length
        chosen: List[str] = []
        seen = set()
        offset = 0
        while len(chosen) < self._copies:
            if offset >= 2 * length:  # pattern lacks k distinct disks
                raise ConfigurationError(
                    "pattern resolution too small for distinct copies"
                )
            candidate = self._pattern[(start + offset) % length]
            offset += 1
            if candidate in seen:
                continue
            seen.add(candidate)
            chosen.append(candidate)
        return tuple(chosen)

    def expected_shares(self) -> Dict[str, float]:
        """Share of pattern slots per disk (the design target)."""
        counts: Dict[str, int] = {spec.bin_id: 0 for spec in self._bins}
        for bin_id in self._pattern:
            counts[bin_id] += 1
        length = len(self._pattern)
        return {bin_id: count / length for bin_id, count in counts.items()}
