"""RAID-style pattern striping — the classic pre-calculated layouts.

RAID ([10] in the paper) stripes blocks across all disks in a fixed
rotating pattern.  On *homogeneous* disks this is perfectly fair with zero
metadata, which is why small arrays use it; the paper's two criticisms,
both reproduced here, are

* **heterogeneity** — a fixed pattern cannot give a larger disk a larger
  share (``StripingStrategy`` over unequal disks is measurably unfair
  unless the AdaptRaid-style weighted pattern of
  :class:`WeightedStripingStrategy` is used, cf. [4]), and
* **adaptivity** — the pattern depends on the disk count, so adding one
  disk relocates nearly *all* blocks (the benches show movement close to
  100%, against < 2 b_i for Redundant Share).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .. import obs
from .._compat import get_numpy
from ..exceptions import ConfigurationError
from ..types import BinSpec, Placement
from . import precompute
from .base import BatchPlacement, ReplicationStrategy, record_batch


class StripingStrategy(ReplicationStrategy):
    """Classic rotating stripe: copy ``i`` of block ``a`` on disk
    ``(a * k + i) mod n``.

    Consecutive placement guarantees the k copies are distinct whenever
    ``k <= n``; the rotation balances load perfectly on homogeneous disks.
    """

    name = "striping"

    def place(self, address: int) -> Placement:
        count = len(self._bins)
        start = (address * self._copies) % count
        return tuple(
            self._bins[(start + offset) % count].bin_id
            for offset in range(self._copies)
        )

    def expected_shares(self) -> Dict[str, float]:
        """Uniform — the fixed pattern ignores capacities entirely."""
        share = 1.0 / len(self._bins)
        return {spec.bin_id: share for spec in self._bins}


class WeightedStripingStrategy(ReplicationStrategy):
    """AdaptRaid-style striping: larger disks appear in more pattern rows.

    A smooth weighted round-robin sequence is precomputed in which disk
    ``i`` occupies a number of slots proportional to its capacity; the k
    copies of block ``a`` occupy the next k *distinct* disks starting at
    pattern slot ``a * k mod L``.  Fairness approaches capacity proportions
    as the pattern resolution grows; adaptivity remains as poor as RAID's.
    """

    name = "weighted-striping"
    kernel = "stripe-table"

    def __init__(
        self,
        bins: Sequence[BinSpec],
        copies: int = 2,
        namespace: str = "",
        resolution: int = 64,
    ) -> None:
        """Build the pattern.

        Args:
            bins: The disks.
            copies: Replication degree.
            namespace: Unused (striping consumes no hashes); kept for
                interface parity.
            resolution: Average pattern slots per disk; higher is fairer
                and costs memory (``n * resolution`` slots).
        """
        super().__init__(bins, copies, namespace)
        if resolution < 1:
            raise ConfigurationError("resolution must be >= 1")
        total = sum(spec.capacity for spec in self._bins)
        slots = max(len(self._bins), len(self._bins) * resolution)
        # Smooth weighted round-robin (interleaved, not blocked): at every
        # slot, hand the slot to the disk with the largest accumulated
        # credit.  Keeps any window of the pattern close to proportional.
        credits = {spec.bin_id: 0.0 for spec in self._bins}
        rates = {
            spec.bin_id: spec.capacity / total for spec in self._bins
        }
        pattern: List[str] = []
        for _ in range(slots):
            for bin_id in credits:
                credits[bin_id] += rates[bin_id]
            winner = max(credits, key=lambda bin_id: (credits[bin_id], bin_id))
            credits[winner] -= 1.0
            pattern.append(winner)
        self._pattern = pattern
        self._rank_ids = [spec.bin_id for spec in self._bins]
        self._rank_index = {
            bin_id: rank for rank, bin_id in enumerate(self._rank_ids)
        }
        self._resolution = resolution
        self._epoch = precompute.current_epoch()
        self._table = None

    @property
    def pattern_length(self) -> int:
        """Number of slots in the precomputed pattern."""
        return len(self._pattern)

    def place(self, address: int) -> Placement:
        length = len(self._pattern)
        start = (address * self._copies) % length
        chosen: List[str] = []
        seen = set()
        offset = 0
        while len(chosen) < self._copies:
            if offset >= 2 * length:  # pattern lacks k distinct disks
                raise ConfigurationError(
                    "pattern resolution too small for distinct copies"
                )
            candidate = self._pattern[(start + offset) % length]
            offset += 1
            if candidate in seen:
                continue
            seen.add(candidate)
            chosen.append(candidate)
        return tuple(chosen)

    # ------------------------------------------------------------------
    # Batch placement
    # ------------------------------------------------------------------

    def _fingerprint(self) -> tuple:
        """Everything the start table depends on."""
        return (
            "weighted-striping",
            self._copies,
            self._resolution,
            tuple((spec.bin_id, spec.capacity) for spec in self._bins),
        )

    def _ensure_start_table(self, np):
        """The (copies × pattern_length) start → rank-tuple table.

        The placement of an address depends on nothing but its start slot
        ``(a · k) mod L``, so the scalar walk is run once per possible
        start and every batch address becomes a table gather.  Shared
        across instances of the same configuration through the epoch-keyed
        :func:`repro.placement.precompute.shared_cache`.  A pattern that
        lacks ``k`` distinct disks raises :class:`ConfigurationError` here
        — the scalar loop raises the same error on every address, since
        any two-lap walk scans the whole pattern.
        """
        table = self._table
        if table is not None:
            return table
        cache = precompute.shared_cache()
        fingerprint = self._fingerprint()
        table = cache.get(fingerprint, self._epoch)
        if table is None:
            length = len(self._pattern)
            ranks = [self._rank_index[bin_id] for bin_id in self._pattern]
            built = np.empty((self._copies, length), dtype=np.int64)
            for start in range(length):
                seen: set = set()
                offset = 0
                copy = 0
                while copy < self._copies:
                    if offset >= 2 * length:
                        raise ConfigurationError(
                            "pattern resolution too small for distinct copies"
                        )
                    candidate = ranks[(start + offset) % length]
                    offset += 1
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                    built[copy, start] = candidate
                    copy += 1
            table = cache.put(fingerprint, self._epoch, built)
        self._table = table
        return table

    def _start_slots(self, np, addresses):
        """Exact ``(a · k) mod L`` per address, as an int64 vector.

        Must match Python's big-int arithmetic for *any* int the scalar
        loop accepts: signed vectors use NumPy's floored ``%`` (same as
        Python's) after reducing the address first so the small multiply
        cannot overflow; unsigned vectors reduce in uint64; Python
        sequences that overflow int64 fall back to exact per-element
        big-int reduction.
        """
        length = len(self._pattern)
        copies = self._copies
        if isinstance(addresses, np.ndarray) and addresses.dtype.kind in "iu":
            reduced = (addresses % addresses.dtype.type(length)).astype(
                np.int64
            )
            return (reduced * copies) % length
        try:
            addr = np.asarray(addresses, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            return np.asarray(
                [(address * copies) % length for address in addresses],
                dtype=np.int64,
            )
        return ((addr % length) * copies) % length

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Vectorized striping: reduce to start slots, gather the table.

        Exact integer arithmetic end to end, so the result is identical
        to the scalar :meth:`place` loop with no tie guard needed.
        Without NumPy the generic scalar loop runs.
        """
        np = get_numpy()
        if np is None:
            return super()._place_many_serial(addresses)
        starts = self._start_slots(np, addresses)
        if starts.size:
            table = self._ensure_start_table(np)
            columns = [table[copy][starts] for copy in range(self._copies)]
        else:
            # Nothing to place: match the scalar loop, which never probes
            # the pattern (and so never raises) on an empty batch.
            columns = [starts.copy() for _ in range(self._copies)]
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, len(starts),
                kernel=self.kernel,
            )
        return BatchPlacement(self._rank_ids, columns)

    def expected_shares(self) -> Dict[str, float]:
        """Share of pattern slots per disk (the design target)."""
        counts: Dict[str, int] = {spec.bin_id: 0 for spec in self._bins}
        for bin_id in self._pattern:
            counts[bin_id] += 1
        length = len(self._pattern)
        return {bin_id: count / length for bin_id, count in counts.items()}
