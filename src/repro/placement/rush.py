"""RUSH — Replication Under Scalable Hashing (Honicky & Miller, IPDPS 03/04).

RUSH maps replicated objects onto storage that grows in *sub-clusters*:
capacity is added in chunks of identical servers, and the algorithm walks
the sub-clusters from the most recently added to the oldest, deciding per
object group how many replicas the sub-cluster keeps before recursing into
the older ones.  Within a sub-cluster, replicas are spread with a
prime-stride permutation, which guarantees that no two replicas of an
object share a server.

The paper under reproduction criticises exactly this chunked growth: a new
sub-cluster must contain enough servers for a complete redundancy group
(``disks >= k``), and single-disk additions or per-disk heterogeneity inside
a chunk are not expressible.  :class:`RushStrategy` enforces that
restriction (raising :class:`~repro.exceptions.ConfigurationError`) so the
comparison benches can demonstrate it.

This implementation follows the RUSH_P structure (weighted sub-cluster
descent + in-cluster permutation).  The sub-cluster replica-count draw uses
a deterministic rounding of the expected share plus a hashed Bernoulli for
the fractional remainder — simpler than the original's distribution but
with the same mean, which is what the fairness comparison exercises; the
simplification is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..hashing.primitives import stable_u64, unit_interval
from ..types import BinSpec, Placement
from .base import ReplicationStrategy

#: Primes used for the in-cluster stride permutation.
_PRIMES = (
    1000003, 1000033, 1000037, 1000039, 1000081, 1000099, 1000117, 1000121,
)


@dataclass(frozen=True)
class SubCluster:
    """A chunk of identical servers added to the system at one time.

    Attributes:
        cluster_id: Stable name of the chunk.
        disks: Number of servers in the chunk.
        disk_weight: Relative weight of each server (all servers in a chunk
            are identical — the RUSH restriction).
    """

    cluster_id: str
    disks: int
    disk_weight: float

    def __post_init__(self) -> None:
        if self.disks < 1:
            raise ConfigurationError("a sub-cluster needs at least one disk")
        if self.disk_weight <= 0:
            raise ConfigurationError("disk weight must be positive")

    @property
    def weight(self) -> float:
        """Total weight of the chunk."""
        return self.disks * self.disk_weight

    def disk_id(self, index: int) -> str:
        """Stable id of the ``index``-th server of the chunk."""
        return f"{self.cluster_id}/disk-{index}"


class RushStrategy(ReplicationStrategy):
    """RUSH_P-style placement over a sequence of sub-clusters."""

    name = "rush"

    def __init__(
        self,
        clusters: Sequence[SubCluster],
        copies: int = 2,
        namespace: str = "",
    ) -> None:
        """Build the strategy.

        Args:
            clusters: Sub-clusters in the order they were added (oldest
                first).  Every cluster except the first may be smaller than
                ``copies``; the *first* must be able to hold a complete
                redundancy group, and the total must as well.
            copies: Replication degree ``k``.
            namespace: Hash salt prefix.

        Raises:
            ConfigurationError: if a sub-cluster smaller than ``copies``
                would make full groups unplaceable (the RUSH chunk
                restriction) or if no clusters are given.
        """
        if not clusters:
            raise ConfigurationError("at least one sub-cluster is required")
        if clusters[0].disks < copies:
            raise ConfigurationError(
                f"the base sub-cluster has {clusters[0].disks} disks; RUSH "
                f"requires every chunk to hold a full group of {copies}"
            )
        for cluster in clusters[1:]:
            if cluster.disks < copies:
                raise ConfigurationError(
                    f"sub-cluster {cluster.cluster_id!r} has "
                    f"{cluster.disks} < k={copies} disks — RUSH requires "
                    "capacity to be added in chunks that can hold a "
                    "complete redundancy group"
                )
        bins = [
            BinSpec(cluster.disk_id(index), max(1, round(cluster.disk_weight)))
            for cluster in clusters
            for index in range(cluster.disks)
        ]
        super().__init__(bins, copies, namespace)
        self._clusters = list(clusters)

    @property
    def clusters(self) -> List[SubCluster]:
        """The sub-cluster layout."""
        return list(self._clusters)

    def _cluster_replicas(self, address: int) -> List[Tuple[SubCluster, int]]:
        """Decide how many of the k replicas each sub-cluster stores.

        Walk from the newest chunk to the oldest; chunk ``j`` keeps a
        ``weight_j / prefix_weight_j`` share of the replicas still
        unassigned (deterministically rounded, fractional part resolved by
        a hash draw), capped by its disk count.  The oldest chunk takes the
        remainder — always possible because it holds >= k disks.
        """
        assignments: List[Tuple[SubCluster, int]] = []
        remaining = self._copies
        prefix_weight = sum(cluster.weight for cluster in self._clusters)
        for position in range(len(self._clusters) - 1, 0, -1):
            cluster = self._clusters[position]
            if remaining == 0:
                break
            share = cluster.weight / prefix_weight
            expected = remaining * share
            count = int(expected)
            fraction = expected - count
            if fraction > 0 and (
                unit_interval(
                    self._namespace, "cluster", cluster.cluster_id, address
                )
                < fraction
            ):
                count += 1
            count = min(count, cluster.disks, remaining)
            if count:
                assignments.append((cluster, count))
                remaining -= count
            prefix_weight -= cluster.weight
        if remaining:
            assignments.append((self._clusters[0], remaining))
        return assignments

    def _disks_within(
        self, cluster: SubCluster, count: int, address: int
    ) -> List[str]:
        """Pick ``count`` distinct disks of a chunk via a prime stride."""
        base = stable_u64(self._namespace, "base", cluster.cluster_id, address)
        start = base % cluster.disks
        if cluster.disks == 1:
            return [cluster.disk_id(0)]
        prime = _PRIMES[base % len(_PRIMES)]
        stride = 1 + prime % (cluster.disks - 1)
        # stride in 1..disks-1 and disks need not be prime; walk with the
        # stride but fall back to linear probing on revisit to guarantee
        # `count` distinct disks.
        chosen: List[str] = []
        seen = set()
        index = start
        while len(chosen) < count:
            if index in seen:
                index = (index + 1) % cluster.disks
                continue
            seen.add(index)
            chosen.append(cluster.disk_id(index))
            index = (index + stride) % cluster.disks
        return chosen

    def place(self, address: int) -> Placement:
        placement: List[str] = []
        for cluster, count in self._cluster_replicas(address):
            placement.extend(self._disks_within(cluster, count, address))
        return tuple(placement[: self._copies])

    def expected_shares(self) -> Dict[str, float]:
        """Design-target shares (weight-proportional).

        RUSH only approximates these on heterogeneous chunk layouts — the
        gap is what the baseline bench reports.
        """
        total = sum(cluster.weight for cluster in self._clusters)
        shares: Dict[str, float] = {}
        for cluster in self._clusters:
            for index in range(cluster.disks):
                shares[cluster.disk_id(index)] = cluster.disk_weight / total
        return shares


def rush_tree(
    clusters: Sequence[SubCluster], copies: int = 2, namespace: str = ""
):
    """RUSH_T-style placement: tree descent over sub-clusters.

    RUSH_T replaces RUSH_P's linear most-recent-first walk with a weighted
    binary tree over the sub-clusters, improving update locality.  The
    same structure is exactly a CRUSH map whose root is a tree bucket of
    per-cluster straw buckets, so this helper builds that map rather than
    duplicating the machinery; the chunk restriction is still enforced.

    Returns:
        A :class:`~repro.placement.crush.CrushStrategy` over the chunk
        layout.
    """
    from ..types import BinSpec
    from .crush import CrushStrategy, make_bucket

    if not clusters:
        raise ConfigurationError("at least one sub-cluster is required")
    for cluster in clusters:
        if cluster.disks < copies:
            raise ConfigurationError(
                f"sub-cluster {cluster.cluster_id!r} has {cluster.disks} "
                f"< k={copies} disks — RUSH requires chunks that can hold "
                "a complete redundancy group"
            )
    items = []
    weights = []
    bins = []
    for cluster in clusters:
        ids = [cluster.disk_id(index) for index in range(cluster.disks)]
        bucket = make_bucket(
            "straw2", f"rush-t/{cluster.cluster_id}", ids,
            [cluster.disk_weight] * cluster.disks,
        )
        items.append(bucket)
        weights.append(cluster.weight)
        bins.extend(
            BinSpec(disk_id, max(1, round(cluster.disk_weight)))
            for disk_id in ids
        )
    root = make_bucket("tree", "rush-t/root", items, weights)
    return CrushStrategy(
        bins, copies=copies, namespace=namespace or "rush-t", root=root
    )


def rush_from_capacities(
    capacities: Sequence[int],
    copies: int = 2,
    chunk: int = 0,
    namespace: str = "",
) -> RushStrategy:
    """Helper: wrap a flat capacity vector into same-size RUSH chunks.

    Args:
        capacities: Per-disk capacities; disks are grouped consecutively
            into chunks of size ``chunk`` (default: one chunk per distinct
            capacity value run, which mimics how a system actually grows).
        copies: Replication degree.
        chunk: Fixed chunk size; 0 groups runs of equal capacity.
    """
    clusters: List[SubCluster] = []
    if chunk > 0:
        for start in range(0, len(capacities), chunk):
            group = capacities[start : start + chunk]
            weight = sum(group) / len(group)
            clusters.append(
                SubCluster(f"chunk-{len(clusters)}", len(group), weight)
            )
    else:
        index = 0
        while index < len(capacities):
            run_end = index
            while (
                run_end < len(capacities)
                and capacities[run_end] == capacities[index]
            ):
                run_end += 1
            clusters.append(
                SubCluster(
                    f"chunk-{len(clusters)}",
                    run_end - index,
                    float(capacities[index]),
                )
            )
            index = run_end
    return RushStrategy(clusters, copies=copies, namespace=namespace)
