"""Interfaces of the placement layer.

Two abstractions:

* :class:`SingleCopyPlacer` — the paper's ``placeonecopy`` role: map a ball
  address to *one* bin, fairly with respect to a weight vector.  Redundant
  Share composes these; they are also strategies in their own right
  (consistent hashing, rendezvous, Share, Sieve, ...).

* :class:`ReplicationStrategy` — map a ball address to an *ordered* tuple of
  ``k`` distinct bins (position ``i`` holds the i-th copy).  Implementations
  include the paper's Redundant Share, the trivial baseline, RUSH, CRUSH and
  RAID striping.

Both are *pure functions of the configuration*: instances are immutable
snapshots, and dynamics (adding/removing devices) are modelled by building a
new instance and diffing placements — which is also how the adaptivity
metrics are defined.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .. import obs
from .._compat import get_numpy
from ..exceptions import ConfigurationError
from ..types import BinSpec, Placement, validate_bins


def record_batch(
    sink: "obs.TraceSink", strategy_name: str, copies: int, batch_size: int
) -> None:
    """Record one ``place_many`` invocation on an *enabled* sink.

    Shared by the default loop and the strategies' vectorized overrides so
    the ``placement.batch`` event schema stays identical across engines
    (the pure-Python/NumPy equivalence tests compare traces byte-wise).
    """
    registry = obs.metrics()
    registry.counter("placement.batches").add(1)
    registry.counter("placement.addresses").add(batch_size)
    registry.histogram("placement.batch_size").observe(batch_size)
    sink.emit(
        "placement.batch",
        strategy=strategy_name,
        copies=copies,
        addresses=batch_size,
    )


class BatchPlacement:
    """Column-oriented result of :meth:`ReplicationStrategy.place_many`.

    Stores one *rank column* per copy position: ``columns[c][j]`` is the
    index into :attr:`rank_ids` of the bin holding copy ``c`` of the j-th
    address.  With NumPy installed the columns are ``int64`` arrays (and
    histograms use ``bincount``); without it they are plain lists — the
    row-oriented accessors behave identically either way.
    """

    __slots__ = ("rank_ids", "columns")

    def __init__(self, rank_ids: Sequence[str], columns: Sequence) -> None:
        """Wrap ``k`` equally long rank columns over a rank → id table."""
        self.rank_ids: List[str] = list(rank_ids)
        self.columns = list(columns)

    @property
    def copies(self) -> int:
        """Replication degree ``k`` (number of columns)."""
        return len(self.columns)

    def __len__(self) -> int:
        """Number of addresses placed."""
        return len(self.columns[0]) if self.columns else 0

    def ids_at(self, position: int) -> List[str]:
        """Bin ids of copy ``position`` for every address (one column)."""
        rank_ids = self.rank_ids
        return [rank_ids[int(rank)] for rank in self.columns[position]]

    def tuples(self) -> List[Placement]:
        """Row view: the list ``[place(a) for a in addresses]`` would give."""
        np = get_numpy()
        if np is not None and self.columns and isinstance(
            self.columns[0], np.ndarray
        ):
            table = np.array(self.rank_ids, dtype=object)
            return list(zip(*(table[column] for column in self.columns)))
        return list(zip(*(self.ids_at(c) for c in range(self.copies))))

    def __iter__(self) -> Iterator[Placement]:
        """Iterate the row view (per-address placements)."""
        return iter(self.tuples())

    def counts(self) -> Dict[str, int]:
        """Per-bin copy histogram, matching
        :func:`repro.metrics.fairness.count_copies` over :meth:`tuples`."""
        np = get_numpy()
        size = len(self.rank_ids)
        if np is not None and self.columns and isinstance(
            self.columns[0], np.ndarray
        ):
            total = np.zeros(size, dtype=np.int64)
            for column in self.columns:
                total += np.bincount(column, minlength=size)
            return {
                self.rank_ids[rank]: int(count)
                for rank, count in enumerate(total)
                if count
            }
        total = [0] * size
        for column in self.columns:
            for rank in column:
                total[rank] += 1
        return {
            self.rank_ids[rank]: count
            for rank, count in enumerate(total)
            if count
        }


class SingleCopyPlacer(abc.ABC):
    """Maps ball addresses to a single bin, fairly w.r.t. bin weights."""

    #: Short machine-readable strategy name (used in namespacing and reports).
    name: str = "single"

    def __init__(self, bins: Sequence[BinSpec], namespace: str = "") -> None:
        validate_bins(bins)
        self._bins: List[BinSpec] = list(bins)
        self._namespace = namespace or self.name

    @property
    def bins(self) -> List[BinSpec]:
        """The configuration snapshot this placer was built from."""
        return list(self._bins)

    @property
    def namespace(self) -> str:
        """Salt prefix isolating this placer's hash draws from others."""
        return self._namespace

    @abc.abstractmethod
    def place(self, address: int) -> str:
        """Return the bin id storing ball ``address``."""

    def place_many(self, addresses: Sequence[int]) -> List[str]:
        """Batch lookup: ``[place(a) for a in addresses]``.

        The default simply loops; placers with a vectorized pipeline
        override this with an equivalent (element-wise identical) fast
        path.
        """
        place = self.place
        return [place(address) for address in addresses]

    def expected_shares(self) -> Dict[str, float]:
        """Analytic probability that a ball lands on each bin.

        The default assumes exact capacity-proportional fairness; strategies
        that are only approximately fair override this.
        """
        total = sum(spec.capacity for spec in self._bins)
        return {spec.bin_id: spec.capacity / total for spec in self._bins}

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}({len(self._bins)} bins)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


#: Factory signature Redundant Share uses to build ``placeonecopy`` instances
#: over sub-ranges of bins with (possibly adjusted) weights.
WeightedPlacerFactory = Callable[[Sequence[str], Sequence[float], str], "WeightedPlacer"]


class WeightedPlacer(abc.ABC):
    """A minimal fair single-copy selector over (ids, weights).

    Unlike :class:`SingleCopyPlacer` this does not carry capacities — it is
    the internal building block handed to Redundant Share, which supplies the
    (clipped, possibly boosted) weights itself.
    """

    @abc.abstractmethod
    def place(self, address: int) -> str:
        """Return the selected id for ball ``address``."""


class ReplicationStrategy(abc.ABC):
    """Maps ball addresses to ordered tuples of ``k`` distinct bins."""

    name: str = "replication"

    def __init__(
        self, bins: Sequence[BinSpec], copies: int, namespace: str = ""
    ) -> None:
        validate_bins(bins)
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies}")
        if copies > len(bins):
            raise ConfigurationError(
                f"cannot place {copies} distinct copies on {len(bins)} bins"
            )
        self._bins: List[BinSpec] = list(bins)
        self._copies = copies
        self._namespace = namespace or self.name

    @property
    def bins(self) -> List[BinSpec]:
        """The configuration snapshot this strategy was built from."""
        return list(self._bins)

    @property
    def copies(self) -> int:
        """Replication degree ``k``."""
        return self._copies

    @property
    def namespace(self) -> str:
        """Salt prefix isolating this strategy's hash draws from others."""
        return self._namespace

    @abc.abstractmethod
    def place(self, address: int) -> Placement:
        """Return the ordered bin ids of all ``k`` copies of ``address``."""

    def place_many(self, addresses: Sequence[int]) -> BatchPlacement:
        """Batch lookup: the placements of many addresses, column-wise.

        Semantically equivalent to ``[place(a) for a in addresses]`` (see
        :meth:`BatchPlacement.tuples`), but returned as ``k`` bin-rank
        columns so throughput-oriented consumers (fairness histograms,
        movement comparisons, rebalancing backlogs) can stay in array
        land.  The default loops over :meth:`place`; strategies with a
        vectorized scan override it with an element-wise identical fast
        path.
        """
        rank_ids = [spec.bin_id for spec in self._bins]
        index = {bin_id: rank for rank, bin_id in enumerate(rank_ids)}
        columns: List[List[int]] = [[] for _ in range(self._copies)]
        place = self.place
        for address in addresses:
            for position, bin_id in enumerate(place(address)):
                columns[position].append(index[bin_id])
        sink = obs.sink()
        if sink.enabled:
            record_batch(sink, self.name, self._copies, len(columns[0]))
        np = get_numpy()
        if np is not None:
            return BatchPlacement(
                rank_ids,
                [np.asarray(column, dtype=np.int64) for column in columns],
            )
        return BatchPlacement(rank_ids, columns)

    def place_copy(self, address: int, position: int) -> str:
        """Return only the bin of copy ``position`` (0-based).

        Default delegates to :meth:`place`; strategies with cheaper partial
        lookups may override.
        """
        placement = self.place(address)
        if not 0 <= position < len(placement):
            raise IndexError(f"copy position {position} out of range")
        return placement[position]

    def expected_shares(self) -> Optional[Dict[str, float]]:
        """Analytic share of all copies each bin receives, if known.

        Returns None when the strategy has no closed form (the empirical
        share is then measured by the metrics layer).
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}(k={self._copies}, {len(self._bins)} bins)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def check_placement(placement: Placement, copies: int) -> None:
    """Assert the paper's redundancy invariant on a placement result.

    Raises:
        ValueError: if the placement has the wrong arity or repeats a bin.
    """
    if len(placement) != copies:
        raise ValueError(
            f"expected {copies} copies, placement has {len(placement)}"
        )
    if len(set(placement)) != len(placement):
        raise ValueError(f"redundancy violated: duplicate bins in {placement}")
