"""Interfaces of the placement layer.

Two abstractions:

* :class:`SingleCopyPlacer` — the paper's ``placeonecopy`` role: map a ball
  address to *one* bin, fairly with respect to a weight vector.  Redundant
  Share composes these; they are also strategies in their own right
  (consistent hashing, rendezvous, Share, Sieve, ...).

* :class:`ReplicationStrategy` — map a ball address to an *ordered* tuple of
  ``k`` distinct bins (position ``i`` holds the i-th copy).  Implementations
  include the paper's Redundant Share, the trivial baseline, RUSH, CRUSH and
  RAID striping.

Both are *pure functions of the configuration*: instances are immutable
snapshots, and dynamics (adding/removing devices) are modelled by building a
new instance and diffing placements — which is also how the adaptivity
metrics are defined.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..types import BinSpec, Placement, validate_bins


class SingleCopyPlacer(abc.ABC):
    """Maps ball addresses to a single bin, fairly w.r.t. bin weights."""

    #: Short machine-readable strategy name (used in namespacing and reports).
    name: str = "single"

    def __init__(self, bins: Sequence[BinSpec], namespace: str = "") -> None:
        validate_bins(bins)
        self._bins: List[BinSpec] = list(bins)
        self._namespace = namespace or self.name

    @property
    def bins(self) -> List[BinSpec]:
        """The configuration snapshot this placer was built from."""
        return list(self._bins)

    @property
    def namespace(self) -> str:
        """Salt prefix isolating this placer's hash draws from others."""
        return self._namespace

    @abc.abstractmethod
    def place(self, address: int) -> str:
        """Return the bin id storing ball ``address``."""

    def expected_shares(self) -> Dict[str, float]:
        """Analytic probability that a ball lands on each bin.

        The default assumes exact capacity-proportional fairness; strategies
        that are only approximately fair override this.
        """
        total = sum(spec.capacity for spec in self._bins)
        return {spec.bin_id: spec.capacity / total for spec in self._bins}

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}({len(self._bins)} bins)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


#: Factory signature Redundant Share uses to build ``placeonecopy`` instances
#: over sub-ranges of bins with (possibly adjusted) weights.
WeightedPlacerFactory = Callable[[Sequence[str], Sequence[float], str], "WeightedPlacer"]


class WeightedPlacer(abc.ABC):
    """A minimal fair single-copy selector over (ids, weights).

    Unlike :class:`SingleCopyPlacer` this does not carry capacities — it is
    the internal building block handed to Redundant Share, which supplies the
    (clipped, possibly boosted) weights itself.
    """

    @abc.abstractmethod
    def place(self, address: int) -> str:
        """Return the selected id for ball ``address``."""


class ReplicationStrategy(abc.ABC):
    """Maps ball addresses to ordered tuples of ``k`` distinct bins."""

    name: str = "replication"

    def __init__(
        self, bins: Sequence[BinSpec], copies: int, namespace: str = ""
    ) -> None:
        validate_bins(bins)
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies}")
        if copies > len(bins):
            raise ConfigurationError(
                f"cannot place {copies} distinct copies on {len(bins)} bins"
            )
        self._bins: List[BinSpec] = list(bins)
        self._copies = copies
        self._namespace = namespace or self.name

    @property
    def bins(self) -> List[BinSpec]:
        """The configuration snapshot this strategy was built from."""
        return list(self._bins)

    @property
    def copies(self) -> int:
        """Replication degree ``k``."""
        return self._copies

    @property
    def namespace(self) -> str:
        """Salt prefix isolating this strategy's hash draws from others."""
        return self._namespace

    @abc.abstractmethod
    def place(self, address: int) -> Placement:
        """Return the ordered bin ids of all ``k`` copies of ``address``."""

    def place_copy(self, address: int, position: int) -> str:
        """Return only the bin of copy ``position`` (0-based).

        Default delegates to :meth:`place`; strategies with cheaper partial
        lookups may override.
        """
        placement = self.place(address)
        if not 0 <= position < len(placement):
            raise IndexError(f"copy position {position} out of range")
        return placement[position]

    def expected_shares(self) -> Optional[Dict[str, float]]:
        """Analytic share of all copies each bin receives, if known.

        Returns None when the strategy has no closed form (the empirical
        share is then measured by the metrics layer).
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}(k={self._copies}, {len(self._bins)} bins)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def check_placement(placement: Placement, copies: int) -> None:
    """Assert the paper's redundancy invariant on a placement result.

    Raises:
        ValueError: if the placement has the wrong arity or repeats a bin.
    """
    if len(placement) != copies:
        raise ValueError(
            f"expected {copies} copies, placement has {len(placement)}"
        )
    if len(set(placement)) != len(placement):
        raise ValueError(f"redundancy violated: duplicate bins in {placement}")
