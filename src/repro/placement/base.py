"""Interfaces of the placement layer.

Two abstractions:

* :class:`SingleCopyPlacer` — the paper's ``placeonecopy`` role: map a ball
  address to *one* bin, fairly with respect to a weight vector.  Redundant
  Share composes these; they are also strategies in their own right
  (consistent hashing, rendezvous, Share, Sieve, ...).

* :class:`ReplicationStrategy` — map a ball address to an *ordered* tuple of
  ``k`` distinct bins (position ``i`` holds the i-th copy).  Implementations
  include the paper's Redundant Share, the trivial baseline, RUSH, CRUSH and
  RAID striping.

Both are *pure functions of the configuration*: instances are immutable
snapshots, and dynamics (adding/removing devices) are modelled by building a
new instance and diffing placements — which is also how the adaptivity
metrics are defined.
"""

from __future__ import annotations

import abc
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from .._compat import env_place_workers, get_numpy
from ..exceptions import ConfigurationError
from ..types import BinSpec, Placement, validate_bins

#: Minimum batch size before ``REPRO_PLACE_WORKERS`` engages the process
#: pool; below this the fork/pickle overhead dwarfs the placement work.
#: An explicit ``workers=`` argument bypasses the floor (tests rely on
#: exercising the sharded path with small batches).
SHARD_MIN_ADDRESSES = 4096


def record_batch(
    sink: "obs.TraceSink",
    strategy_name: str,
    copies: int,
    batch_size: int,
    kernel: Optional[str] = None,
) -> None:
    """Record one ``place_many`` invocation on an *enabled* sink.

    Shared by the default loop and the strategies' vectorized overrides so
    the ``placement.batch`` event schema stays identical across engines
    (the pure-Python/NumPy equivalence tests compare traces byte-wise).
    ``kernel`` is the strategy's :attr:`ReplicationStrategy.kernel` family
    name; it describes the *logical* engine, so both legs record the same
    per-kernel counters whichever one actually ran.
    """
    registry = obs.metrics()
    registry.counter("placement.batches").add(1)
    registry.counter("placement.addresses").add(batch_size)
    registry.histogram("placement.batch_size").observe(batch_size)
    if kernel:
        registry.counter(f"placement.kernel.{kernel}.batches").add(1)
        registry.counter(f"placement.kernel.{kernel}.addresses").add(
            batch_size
        )
        registry.histogram(f"placement.kernel.{kernel}.batch_size").observe(
            batch_size
        )
    sink.emit(
        "placement.batch",
        strategy=strategy_name,
        copies=copies,
        addresses=batch_size,
    )


class BatchPlacement:
    """Column-oriented result of :meth:`ReplicationStrategy.place_many`.

    Stores one *rank column* per copy position: ``columns[c][j]`` is the
    index into :attr:`rank_ids` of the bin holding copy ``c`` of the j-th
    address.  With NumPy installed the columns are ``int64`` arrays (and
    histograms use ``bincount``); without it they are plain lists — the
    row-oriented accessors behave identically either way.
    """

    __slots__ = ("rank_ids", "columns")

    def __init__(self, rank_ids: Sequence[str], columns: Sequence) -> None:
        """Wrap ``k`` equally long rank columns over a rank → id table."""
        self.rank_ids: List[str] = list(rank_ids)
        self.columns = list(columns)

    @property
    def copies(self) -> int:
        """Replication degree ``k`` (number of columns)."""
        return len(self.columns)

    def __len__(self) -> int:
        """Number of addresses placed."""
        return len(self.columns[0]) if self.columns else 0

    def ids_at(self, position: int) -> List[str]:
        """Bin ids of copy ``position`` for every address (one column)."""
        rank_ids = self.rank_ids
        return [rank_ids[int(rank)] for rank in self.columns[position]]

    def tuples(self) -> List[Placement]:
        """Row view: the list ``[place(a) for a in addresses]`` would give."""
        np = get_numpy()
        if np is not None and self.columns and isinstance(
            self.columns[0], np.ndarray
        ):
            table = np.array(self.rank_ids, dtype=object)
            return list(zip(*(table[column] for column in self.columns)))
        return list(zip(*(self.ids_at(c) for c in range(self.copies))))

    def __iter__(self) -> Iterator[Placement]:
        """Iterate the row view (per-address placements)."""
        return iter(self.tuples())

    def counts(self) -> Dict[str, int]:
        """Per-bin copy histogram, matching
        :func:`repro.metrics.fairness.count_copies` over :meth:`tuples`."""
        np = get_numpy()
        size = len(self.rank_ids)
        if np is not None and self.columns and isinstance(
            self.columns[0], np.ndarray
        ):
            total = np.zeros(size, dtype=np.int64)
            for column in self.columns:
                total += np.bincount(column, minlength=size)
            return {
                self.rank_ids[rank]: int(count)
                for rank, count in enumerate(total)
                if count
            }
        total = [0] * size
        for column in self.columns:
            for rank in column:
                total[rank] += 1
        return {
            self.rank_ids[rank]: count
            for rank, count in enumerate(total)
            if count
        }


class SingleCopyPlacer(abc.ABC):
    """Maps ball addresses to a single bin, fairly w.r.t. bin weights."""

    #: Short machine-readable strategy name (used in namespacing and reports).
    name: str = "single"

    def __init__(self, bins: Sequence[BinSpec], namespace: str = "") -> None:
        validate_bins(bins)
        self._bins: List[BinSpec] = list(bins)
        self._namespace = namespace or self.name

    @property
    def bins(self) -> List[BinSpec]:
        """The configuration snapshot this placer was built from."""
        return list(self._bins)

    @property
    def namespace(self) -> str:
        """Salt prefix isolating this placer's hash draws from others."""
        return self._namespace

    @abc.abstractmethod
    def place(self, address: int) -> str:
        """Return the bin id storing ball ``address``."""

    def place_many(
        self,
        addresses: Sequence[int],
        *,
        workers: Optional[int] = None,
    ) -> List[str]:
        """Batch lookup: ``[place(a) for a in addresses]``.

        Accepts the same keyword signature as
        :meth:`ReplicationStrategy.place_many` so callers can treat every
        registered strategy — single-copy placers included — uniformly.
        Single-copy batches are cheap enough that sharding never pays for
        the fork overhead, so ``workers`` is accepted for signature parity
        and the engine always runs the serial loop.

        The default simply loops; placers with a vectorized pipeline
        override :meth:`_place_many_serial` with an equivalent
        (element-wise identical) fast path.
        """
        del workers  # accepted for API parity; single-copy runs serial
        return self._place_many_serial(addresses)

    def _place_many_serial(self, addresses: Sequence[int]) -> List[str]:
        """Single-process batch engine: the scalar loop by default."""
        place = self.place
        return [place(address) for address in addresses]

    def expected_shares(self) -> Dict[str, float]:
        """Analytic probability that a ball lands on each bin.

        The default assumes exact capacity-proportional fairness; strategies
        that are only approximately fair override this.
        """
        total = sum(spec.capacity for spec in self._bins)
        return {spec.bin_id: spec.capacity / total for spec in self._bins}

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}({len(self._bins)} bins)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


#: Factory signature Redundant Share uses to build ``placeonecopy`` instances
#: over sub-ranges of bins with (possibly adjusted) weights.
WeightedPlacerFactory = Callable[[Sequence[str], Sequence[float], str], "WeightedPlacer"]


class WeightedPlacer(abc.ABC):
    """A minimal fair single-copy selector over (ids, weights).

    Unlike :class:`SingleCopyPlacer` this does not carry capacities — it is
    the internal building block handed to Redundant Share, which supplies the
    (clipped, possibly boosted) weights itself.
    """

    @abc.abstractmethod
    def place(self, address: int) -> str:
        """Return the selected id for ball ``address``."""


class ReplicationStrategy(abc.ABC):
    """Maps ball addresses to ordered tuples of ``k`` distinct bins."""

    name: str = "replication"

    #: Name of the shared-kernel family the strategy's batch engine is
    #: built on (see :mod:`repro.placement.kernels`), or None for the
    #: generic per-address loop.  Used for the per-kernel obs counters
    #: and reported by the throughput bench; it labels the *logical*
    #: engine, so it stays set even when the pure-Python leg runs.
    kernel: Optional[str] = None

    def __init__(
        self, bins: Sequence[BinSpec], copies: int, namespace: str = ""
    ) -> None:
        validate_bins(bins)
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies}")
        if copies > len(bins):
            raise ConfigurationError(
                f"cannot place {copies} distinct copies on {len(bins)} bins"
            )
        self._bins: List[BinSpec] = list(bins)
        self._copies = copies
        self._namespace = namespace or self.name

    @property
    def bins(self) -> List[BinSpec]:
        """The configuration snapshot this strategy was built from."""
        return list(self._bins)

    @property
    def copies(self) -> int:
        """Replication degree ``k``."""
        return self._copies

    @property
    def namespace(self) -> str:
        """Salt prefix isolating this strategy's hash draws from others."""
        return self._namespace

    @abc.abstractmethod
    def place(self, address: int) -> Placement:
        """Return the ordered bin ids of all ``k`` copies of ``address``."""

    def place_many(
        self,
        addresses: Sequence[int],
        *,
        workers: Optional[int] = None,
    ) -> BatchPlacement:
        """Batch lookup: the placements of many addresses, column-wise.

        Semantically equivalent to ``[place(a) for a in addresses]`` (see
        :meth:`BatchPlacement.tuples`), but returned as ``k`` bin-rank
        columns so throughput-oriented consumers (fairness histograms,
        movement comparisons, rebalancing backlogs) can stay in array
        land.  Strategies with a vectorized engine override
        :meth:`_place_many_serial` with an element-wise identical fast
        path; the default loops over :meth:`place`.

        Args:
            addresses: The ball addresses to place.
            workers: Shard the address vector across ``workers`` OS
                processes and merge the columns deterministically (the
                result is identical to the serial call — placement is a
                pure function per address).  ``None`` (default) consults
                the ``REPRO_PLACE_WORKERS`` environment variable, which
                only engages for batches of at least
                ``SHARD_MIN_ADDRESSES``; ``0``/``1`` force the serial
                path.
        """
        count = len(addresses)
        shard_workers = self._effective_workers(workers, count)
        if shard_workers > 1:
            return self._place_many_sharded(addresses, shard_workers)
        return self._place_many_serial(addresses)

    def _effective_workers(self, workers: Optional[int], count: int) -> int:
        """Resolve the worker count for one ``place_many`` call."""
        if workers is None:
            requested = env_place_workers()
            if requested > 1 and count < SHARD_MIN_ADDRESSES:
                return 0
        else:
            requested = max(int(workers), 0)
        if requested <= 1 or count < 2:
            return 0
        return min(requested, count)

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Single-process batch engine: the scalar loop by default.

        Subclasses with a vectorized pipeline override this (not
        :meth:`place_many`, which owns the sharding decision).
        """
        rank_ids = [spec.bin_id for spec in self._bins]
        index = {bin_id: rank for rank, bin_id in enumerate(rank_ids)}
        columns: List[List[int]] = [[] for _ in range(self._copies)]
        place = self.place
        for address in addresses:
            for position, bin_id in enumerate(place(address)):
                columns[position].append(index[bin_id])
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, len(columns[0]),
                kernel=self.kernel,
            )
        np = get_numpy()
        if np is not None:
            return BatchPlacement(
                rank_ids,
                [np.asarray(column, dtype=np.int64) for column in columns],
            )
        return BatchPlacement(rank_ids, columns)

    def _place_many_sharded(
        self, addresses: Sequence[int], workers: int
    ) -> BatchPlacement:
        """Fan the batch out over a process pool; merge deterministically.

        Contiguous shards of the address vector are placed by worker
        processes; with NumPy installed each worker writes its rank
        columns straight into a shared-memory result matrix at its shard
        offset, so nothing but per-shard timings travels back through the
        pickle channel.  The merged :class:`BatchPlacement` is identical
        to the serial result by construction.  Instrumented per shard
        (``placement.shard`` events, ``placement.shard_ms`` histogram) on
        top of the usual ``placement.batch`` record.
        """
        import concurrent.futures

        np = get_numpy()
        count = len(addresses)
        bounds = _shard_bounds(count, workers)
        shm = None
        shm_name = None
        if np is not None:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(8 * self._copies * count, 8)
            )
            shm_name = shm.name
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [
                    pool.submit(
                        _place_shard,
                        self,
                        addresses[lo:hi],
                        lo,
                        shm_name,
                        count,
                    )
                    for lo, hi in bounds
                ]
                results = [future.result() for future in futures]
            results.sort(key=lambda item: item[0])
            rank_ids = results[0][3]
            if np is not None:
                view = np.ndarray(
                    (self._copies, count), dtype=np.int64, buffer=shm.buf
                )
                columns = [np.array(view[c], copy=True) for c in range(self._copies)]
            else:
                columns = [
                    [rank for _, _, _, _, cols in results for rank in cols[c]]
                    for c in range(self._copies)
                ]
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, count, kernel=self.kernel
            )
            registry = obs.metrics()
            registry.counter("placement.shards").add(len(results))
            histogram = registry.histogram("placement.shard_ms")
            for shard, (offset, size, elapsed, _, _) in enumerate(results):
                histogram.observe(elapsed * 1000.0)
                sink.emit(
                    "placement.shard",
                    strategy=self.name,
                    shard=shard,
                    addresses=size,
                    seconds=round(elapsed, 6),
                )
        return BatchPlacement(rank_ids, columns)

    def place_copy(self, address: int, position: int) -> str:
        """Return only the bin of copy ``position`` (0-based).

        Default delegates to :meth:`place`; strategies with cheaper partial
        lookups may override.
        """
        placement = self.place(address)
        if not 0 <= position < len(placement):
            raise IndexError(f"copy position {position} out of range")
        return placement[position]

    def expected_shares(self) -> Optional[Dict[str, float]]:
        """Analytic share of all copies each bin receives, if known.

        Returns None when the strategy has no closed form (the empirical
        share is then measured by the metrics layer).
        """
        return None

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}(k={self._copies}, {len(self._bins)} bins)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


def _shard_bounds(count: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``count`` items into ``workers`` contiguous balanced slices."""
    base, extra = divmod(count, workers)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for shard in range(workers):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _place_shard(
    strategy: "ReplicationStrategy",
    addresses: Sequence[int],
    offset: int,
    shm_name: Optional[str],
    total: int,
):
    """Worker-process body of :meth:`ReplicationStrategy._place_many_sharded`.

    Places one contiguous shard serially and publishes the rank columns —
    into the shared-memory result matrix at ``offset`` when NumPy is
    available, otherwise back through the return value.  Observability is
    disabled in the worker (the parent records the batch and the per-shard
    timings); the wall-clock spent placing is measured here so the parent's
    numbers exclude pool scheduling overhead.
    """
    obs.set_sink(obs.NULL_SINK)
    start = time.perf_counter()
    batch = strategy.place_many(addresses, workers=0)
    elapsed = time.perf_counter() - start
    np = get_numpy()
    if shm_name is not None and np is not None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            view = np.ndarray(
                (batch.copies, total), dtype=np.int64, buffer=shm.buf
            )
            for position, column in enumerate(batch.columns):
                view[position, offset : offset + len(batch)] = np.asarray(
                    column, dtype=np.int64
                )
        finally:
            shm.close()
        return (offset, len(batch), elapsed, batch.rank_ids, None)
    columns = [[int(rank) for rank in column] for column in batch.columns]
    return (offset, len(batch), elapsed, batch.rank_ids, columns)


def check_placement(placement: Placement, copies: int) -> None:
    """Assert the paper's redundancy invariant on a placement result.

    Raises:
        ValueError: if the placement has the wrong arity or repeats a bin.
    """
    if len(placement) != copies:
        raise ValueError(
            f"expected {copies} copies, placement has {len(placement)}"
        )
    if len(set(placement)) != len(placement):
        raise ValueError(f"redundancy violated: duplicate bins in {placement}")
