"""Residual-performance placement (RPDP) for heterogeneous fleets.

Pakana et al.'s RPDP (arXiv 2304.08692; see PAPERS.md) places replicas
by each node's *residual performance* — how much service rate it has
left — rather than by raw storage capacity, so a fleet mixing fast and
slow devices equalises **load** instead of bytes.  This reproduction
fits that idea into the repo's strategy model:

* Each device carries a ``service_rate`` (requests it can serve per
  unit time).  Defaults to its capacity — in a homogeneous-performance
  fleet RPDP degenerates to the trivial baseline.
* Copy draws are the proven masked-rendezvous engine of
  :class:`~repro.placement.trivial.TrivialReplication`, but weighted by
  **rate shares** instead of capacity shares: a device's probability of
  winning a draw tracks the service it can absorb, so expected
  utilisation (copies held over rate) is flat across the fleet.
* ``clip_rates=True`` (default) first clips rate shares at the
  Lemma 2.2 water-fill limit, preventing a single fast device from
  being asked to hold more than one copy of a ball — the same
  redundancy argument the capacity-side strategies obey.

The scalar/vectorized equivalence, tie-guard contract and pure-Python
leg are all inherited from the trivial engine; only the weight vector
differs.  :func:`utilization` is the load metric the trade-off bench's
heterogeneity gate checks: RPDP's peak utilisation must not exceed a
capacity-only placement's on a skewed-rate fleet.
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Optional, Sequence, Union

from ..exceptions import ConfigurationError
from ..hashing.primitives import derive_base
from ..metrics.stats import fair_copy_shares
from .trivial import TrivialReplication

Rates = Union[Sequence[float], Mapping[str, float]]


class ResidualPerformancePlacement(TrivialReplication):
    """k sequential draws weighted by per-device service-rate shares."""

    name = "rpdp"
    kernel = "masked-hrw"

    def __init__(
        self,
        bins,
        copies: int = 2,
        namespace: str = "",
        service_rates: Optional[Rates] = None,
        clip_rates: bool = True,
    ):
        """Reweight the trivial engine's draws by service rates.

        Args:
            bins: Device specs (capacities still validate redundancy).
            copies: Replication degree ``k``.
            namespace: Salt prefix (defaults to the strategy name, so
                draws are independent of the trivial baseline's).
            service_rates: Per-device rates, either positional (aligned
                with ``bins``) or keyed by bin id covering every bin.
                ``None`` uses the capacities.
            clip_rates: Clip rate shares at the water-fill limit before
                weighting (Lemma 2.2); ``False`` uses raw normalised
                rates.
        """
        super().__init__(bins, copies, namespace)
        self._rates = self._resolve_rates(service_rates)
        if clip_rates:
            weights = fair_copy_shares(self._rates, self._copies)
        else:
            total = sum(self._rates.values())
            weights = {
                bin_id: rate / total for bin_id, rate in self._rates.items()
            }
        self._weights = weights
        # Same (draw, bin) salt layout as the parent engine, reweighted;
        # bases are re-derived (not reused) because the namespace differs.
        self._draw_entries = [
            [
                (
                    spec.bin_id,
                    weights[spec.bin_id],
                    derive_base(
                        self._namespace, "draw", draw, spec.bin_id
                    ),
                )
                for spec in self._bins
            ]
            for draw in range(self._copies)
        ]

    def _resolve_rates(
        self, service_rates: Optional[Rates]
    ) -> Dict[str, float]:
        if service_rates is None:
            return {
                spec.bin_id: float(spec.capacity) for spec in self._bins
            }
        if isinstance(service_rates, Mapping):
            ids = {spec.bin_id for spec in self._bins}
            missing = sorted(ids - set(service_rates))
            extra = sorted(set(service_rates) - ids)
            if missing or extra:
                raise ConfigurationError(
                    f"service_rates must cover exactly the bin ids; "
                    f"missing {missing}, unknown {extra}"
                )
            rates = {
                bin_id: float(service_rates[bin_id]) for bin_id in ids
            }
        else:
            if len(service_rates) != len(self._bins):
                raise ConfigurationError(
                    f"got {len(service_rates)} service rates for "
                    f"{len(self._bins)} bins"
                )
            rates = {
                spec.bin_id: float(rate)
                for spec, rate in zip(self._bins, service_rates)
            }
        if any(rate <= 0 for rate in rates.values()):
            raise ConfigurationError("service rates must be positive")
        return rates

    @property
    def service_rates(self) -> Dict[str, float]:
        """The per-device service rates this placement equalises over."""
        return dict(self._rates)

    def expected_shares(self) -> Dict[str, float]:
        """Exact per-device share of all copies under rate-weighted draws.

        Same ordered-sequence sum as the parent, over the rate-derived
        draw weights; exponential in ``k``, so capped at small ``n``
        (analytic-bench scale) — larger fleets measure empirically.
        """
        if len(self._bins) > 12:
            return None  # type: ignore[return-value]  # see docstring
        weights = self._weights
        ids = list(weights)
        inclusion = {bin_id: 0.0 for bin_id in ids}
        for sequence in itertools.permutations(ids, self._copies):
            probability = 1.0
            remaining = sum(weights.values())
            for bin_id in sequence:
                probability *= weights[bin_id] / remaining
                remaining -= weights[bin_id]
            for bin_id in sequence:
                inclusion[bin_id] += probability
        total = sum(inclusion.values())
        return {bin_id: value / total for bin_id, value in inclusion.items()}

    def expected_load(self) -> Optional[Dict[str, float]]:
        """Analytic utilisation per device: copy share over rate share.

        ``1.0`` everywhere means load perfectly tracks serving power;
        this is the quantity RPDP flattens and capacity-only placement
        skews on rate-heterogeneous fleets.  ``None`` when the exact
        shares have no closed form (``n > 12``).
        """
        shares = self.expected_shares()
        if shares is None:
            return None
        return utilization(shares, self._rates)


def utilization(
    copy_shares: Mapping[str, float], rates: Mapping[str, float]
) -> Dict[str, float]:
    """Per-device load relative to serving power.

    ``utilization[i] = (share_i of all copies) / (rate_i / total_rate)``
    — the factor by which device ``i`` is busier than a perfectly
    load-balanced fleet.  Accepts copy *counts* as well as shares (the
    normalisation cancels).  This is the metric behind the trade-off
    bench's heterogeneity gate.
    """
    share_total = sum(copy_shares.values())
    rate_total = sum(rates.values())
    if share_total <= 0 or rate_total <= 0:
        raise ValueError("shares and rates must have positive totals")
    return {
        bin_id: (share / share_total) / (rates[bin_id] / rate_total)
        for bin_id, share in copy_shares.items()
    }
