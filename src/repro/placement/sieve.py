"""The Sieve strategy (Brinkmann, Salzwedel, Scheideler — SPAA 2002).

Sieve realises fair heterogeneous placement by *sieving* a stream of uniform
candidates: draw a bin uniformly at random, accept it with probability
proportional to its capacity relative to the largest bin, and repeat on
rejection.  Acceptance thresholds are what the original paper encodes in its
compact "sieve" data structure; the rejection formulation used here is
mathematically identical:

    P(bin i accepted at a given round) = (1/n) * (b_i / b_max)
    =>  P(ball lands on bin i)         = b_i / sum_j b_j       (exactly)

The number of rounds is geometric with mean ``b_max / b_avg`` — constant for
bounded heterogeneity.  A deterministic per-ball hash stream supplies the
draws, so lookups are stable; a (probabilistically unreachable) round cap
falls back to rendezvous to keep lookups total.
"""

from __future__ import annotations

from typing import Sequence

from ..hashing.primitives import HashStream, derive_base
from ..types import BinSpec
from .base import SingleCopyPlacer
from .rendezvous import WeightedRendezvous

#: Upper bound on sieve rounds before the deterministic fallback engages.
#: With acceptance probability >= 1/n per round the chance of exhausting the
#: cap is below (1 - 1/n)^512 — negligible for the bin counts studied here.
MAX_ROUNDS = 512


class SievePlacer(SingleCopyPlacer):
    """Sieve (rejection-sampling) placement over a configuration of bins."""

    name = "sieve"

    def __init__(self, bins: Sequence[BinSpec], namespace: str = "") -> None:
        super().__init__(bins, namespace)
        self._max_capacity = max(spec.capacity for spec in self._bins)
        self._stream_base = derive_base(self._namespace, "ball")
        self._fallback = WeightedRendezvous(
            [spec.bin_id for spec in self._bins],
            [float(spec.capacity) for spec in self._bins],
            self._namespace + "/fallback",
        )

    def place(self, address: int) -> str:
        stream = HashStream(self._stream_base, address)
        count = len(self._bins)
        for _ in range(MAX_ROUNDS):
            candidate = self._bins[int(stream.next_unit() * count) % count]
            if stream.next_unit() * self._max_capacity < candidate.capacity:
                return candidate.bin_id
        return self._fallback.place(address)

    def expected_rounds(self) -> float:
        """Mean number of sieve rounds per lookup (``b_max / b_avg``)."""
        average = sum(spec.capacity for spec in self._bins) / len(self._bins)
        return self._max_capacity / average
