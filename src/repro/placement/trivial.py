"""The *trivial* replication baseline (Definition 2.3 of the paper).

k-fold replication by ``k`` successive fair draws: draw ``i`` selects among
the bins not chosen by draws ``1..i-1`` with probability proportional to
their (constant) relative weights.  This is what one gets by running
consistent hashing / Share / rendezvous ``k`` times and skipping collisions
— the common practice in P2P and DHT systems.

The paper's Lemma 2.4 proves this can **never** be perfectly fair on
heterogeneous bins: a bin that deserves ``k·c_i >= `` a large share is
skipped entirely with probability ``prod (1 - adjusted c_i) > 1 - k·c_i``,
so big bins are systematically under-loaded and capacity is wasted.  On the
paper's Figure 1 example (bins ``[2, 1, 1]``, k = 2) the big bin misses a
ball with probability ``1/2 * 1/3 = 1/6``, wasting 1/12 of the system.

:func:`trivial_miss_probability` computes that miss probability exactly
(it is the quantity Figure 1 illustrates), and
:class:`TrivialReplication` is the executable strategy used as the
baseline in the capacity-efficiency benches.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence

from .. import obs
from .._compat import get_numpy
from ..hashing.primitives import (
    as_u64_array,
    derive_base,
    unit_from_base_open,
)
from ..types import BinSpec, Placement
from . import kernels
from .base import BatchPlacement, ReplicationStrategy, record_batch
from .rendezvous import rendezvous_score

#: Historical home of the sub-ulp tie guard; the contract (and the
#: value) now lives in :data:`repro.placement.kernels.TIE_GUARD`,
#: shared by every strategy ported onto the kernel library.
_TIE_GUARD = kernels.TIE_GUARD


class TrivialReplication(ReplicationStrategy):
    """k independent weight-proportional draws without replacement.

    Each draw is realised as a weighted rendezvous over the remaining bins
    with a draw-specific salt, which is exactly Definition 2.3: the
    probability a bin wins draw ``i`` is its weight relative to the bins
    still participating, independent of ``k``.
    """

    name = "trivial"
    kernel = "masked-hrw"

    def __init__(self, bins, copies=2, namespace=""):
        """Precompute per-(draw, bin) salt bases on top of the base init."""
        super().__init__(bins, copies, namespace)
        self._draw_entries = [
            [
                (spec.bin_id, float(spec.capacity),
                 derive_base(self._namespace, "draw", draw, spec.bin_id))
                for spec in self._bins
            ]
            for draw in range(self._copies)
        ]
        self._rank_ids = [spec.bin_id for spec in self._bins]
        self._rank_index = {
            bin_id: rank for rank, bin_id in enumerate(self._rank_ids)
        }

    def place(self, address: int) -> Placement:
        chosen: List[str] = []
        taken = set()
        for draw in range(self._copies):
            best_id = None
            best_score = -math.inf
            for bin_id, weight, base in self._draw_entries[draw]:
                if bin_id in taken:
                    continue
                uniform = unit_from_base_open(base, address)
                score = rendezvous_score(weight, uniform)
                if score > best_score:
                    best_score = score
                    best_id = bin_id
            assert best_id is not None
            chosen.append(best_id)
            taken.add(best_id)
        return tuple(chosen)

    def _place_many_serial(self, addresses: Sequence[int]) -> BatchPlacement:
        """Vectorized Definition 2.3: k masked rendezvous races per batch.

        Each draw evaluates every (bin, address) score in one SplitMix64
        pass plus one ``log`` through the shared kernel library; bins
        already holding a copy of an address are masked out before the
        per-address argmax, exactly mirroring the scalar skip.
        Element-wise identical to :meth:`place` — see
        :data:`~repro.placement.kernels.TIE_GUARD` for how sub-ulp log
        disagreements are kept out of the result.  Without NumPy the
        generic scalar loop runs.
        """
        np = get_numpy()
        if np is None:
            return super()._place_many_serial(addresses)
        addr = as_u64_array(addresses)
        count = addr.shape[0]
        bin_count = len(self._bins)
        weights = [weight for _, weight, _ in self._draw_entries[0]]
        all_bases = [
            np.asarray(
                [base for _, _, base in self._draw_entries[draw]],
                dtype=np.uint64,
            )
            for draw in range(self._copies)
        ]
        columns = np.empty((self._copies, count), dtype=np.int64)
        unsafe_indices = []
        for start, stop in kernels.blocks(count):
            mixed = kernels.premix(addr[start:stop])
            block = stop - start
            taken = np.zeros((block, bin_count), dtype=bool)
            unsafe = np.zeros(block, dtype=bool)
            rows = np.arange(block)
            for draw in range(self._copies):
                uniforms = kernels.open_draw_matrix(all_bases[draw], mixed)
                scores = kernels.hrw_score_matrix(weights, uniforms)
                scores[taken] = -np.inf
                winner, draw_unsafe = kernels.argmax_with_guard(scores)
                unsafe |= draw_unsafe
                columns[draw, start:stop] = winner
                taken[rows, winner] = True
            unsafe_indices.extend(start + np.flatnonzero(unsafe))
        for index in unsafe_indices:
            # Near-tie: the scalar loop is the authority on this address.
            placement = self.place(int(addresses[index]))
            for position, bin_id in enumerate(placement):
                columns[position, index] = self._rank_index[bin_id]
        kernels.record_tie_recomputes(self.kernel, len(unsafe_indices))
        sink = obs.sink()
        if sink.enabled:
            record_batch(
                sink, self.name, self._copies, count, kernel=self.kernel
            )
        return BatchPlacement(self._rank_ids, list(columns))

    def expected_shares(self) -> Dict[str, float]:
        """Exact per-bin share of all copies under sequential fair draws.

        Computed by summing over all ordered draw sequences — exponential in
        ``k`` per bin subset, so intended for the small ``n`` of the
        analytic benches (Figure 1 scale).  For larger systems measure
        empirically instead.
        """
        if len(self._bins) > 12:
            return None  # type: ignore[return-value]  # see docstring
        weights = {spec.bin_id: float(spec.capacity) for spec in self._bins}
        ids = list(weights)
        inclusion = {bin_id: 0.0 for bin_id in ids}
        for sequence in itertools.permutations(ids, self._copies):
            probability = 1.0
            remaining = sum(weights.values())
            for bin_id in sequence:
                probability *= weights[bin_id] / remaining
                remaining -= weights[bin_id]
            for bin_id in sequence:
                inclusion[bin_id] += probability
        total = sum(inclusion.values())
        return {bin_id: value / total for bin_id, value in inclusion.items()}


def trivial_miss_probability(
    capacities: Sequence[float], copies: int, bin_index: int = 0
) -> float:
    """P(bin ``bin_index`` receives *no* copy of a ball) under Definition 2.3.

    For the Figure 1 system ``([2, 1, 1], k=2)`` and the big bin this is
    ``1/6`` — the capacity the trivial strategy wastes.  Computed exactly by
    summing over all draw sequences that avoid the bin.
    """
    if copies > len(capacities):
        raise ValueError("more copies than bins")
    indices = [i for i in range(len(capacities)) if i != bin_index]
    miss = 0.0
    for sequence in itertools.permutations(indices, copies):
        probability = 1.0
        remaining = float(sum(capacities))
        for index in sequence:
            probability *= capacities[index] / remaining
            remaining -= capacities[index]
        miss += probability
    return miss


def trivial_wasted_fraction(capacities: Sequence[float], copies: int) -> float:
    """Fraction of total system capacity the trivial strategy cannot use.

    A bin that should be hit with probability ``min(1, k·c_i)`` but is hit
    with probability ``1 - miss_i`` wastes the difference; summed over bins
    and normalised by the total, this is the Lemma 2.4 capacity loss.
    """
    total = float(sum(capacities))
    wasted = 0.0
    for index, capacity in enumerate(capacities):
        deserved = min(1.0, copies * capacity / total)
        achieved = 1.0 - trivial_miss_probability(capacities, copies, index)
        if achieved < deserved:
            wasted += (deserved - achieved) * total / copies
    return wasted / total
