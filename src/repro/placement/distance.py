"""Weighted distributed hash tables via distance measures.

The geometric strategies of Schindelhauer and Schomaker (SPAA 2005) that the
paper cites as prior heterogeneous schemes ([11]): bins and balls hash onto
the unit circle, and a ball is assigned to the bin minimising a *weighted
distance*:

* **Linear method** — ``d(x, bin) = dist(x, p_bin) / w_bin``: combines
  consistent hashing with a linearly weighted distance.  Shares are roughly
  (not exactly) proportional to weights; heavier bins attract longer arcs.

* **Logarithmic method** — ``d(x, bin) = ln(1 / (1 - dist)) / w_bin`` (an
  exponential race on circular distances).  If the distances were
  independent uniforms this would give exactly weight-proportional shares
  (the same mathematics as rendezvous hashing); with a single point per bin
  on a shared circle the dependence between distances leaves a small bias
  that decays with more virtual points per bin.

Both support multiple virtual points per bin to sharpen concentration.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

from ..hashing.primitives import unit_interval
from ..types import BinSpec
from .base import SingleCopyPlacer


def circular_distance(a: float, b: float) -> float:
    """Clockwise distance from ``a`` to ``b`` on the unit circle."""
    return (b - a) % 1.0


class _DistancePlacer(SingleCopyPlacer):
    """Shared machinery: virtual points plus a per-strategy distance."""

    def __init__(
        self,
        bins: Sequence[BinSpec],
        namespace: str = "",
        points_per_bin: int = 16,
    ) -> None:
        super().__init__(bins, namespace)
        if points_per_bin < 1:
            raise ValueError("points_per_bin must be >= 1")
        total = sum(spec.capacity for spec in self._bins)
        self._points: List[Tuple[float, str, float]] = []
        for spec in self._bins:
            weight = spec.capacity / total
            for replica in range(points_per_bin):
                position = unit_interval(
                    self._namespace, "point", spec.bin_id, replica
                )
                self._points.append((position, spec.bin_id, weight))

    @abc.abstractmethod
    def _distance(self, raw: float, weight: float) -> float:
        """Weighted distance of a ball draw to one ring point."""

    def place(self, address: int) -> str:
        ball = unit_interval(self._namespace, "ball", address)
        best_id = self._points[0][1]
        best = math.inf
        for position, bin_id, weight in self._points:
            value = self._distance(circular_distance(ball, position), weight)
            if value < best:
                best = value
                best_id = bin_id
        return best_id


class LinearDistancePlacer(_DistancePlacer):
    """The linear method: minimise ``dist / weight``."""

    name = "linear-method"

    def _distance(self, raw: float, weight: float) -> float:
        return raw / weight


class LogDistancePlacer(_DistancePlacer):
    """The logarithmic method: minimise ``-ln(1 - dist) / weight``."""

    name = "log-method"

    def _distance(self, raw: float, weight: float) -> float:
        # raw is in [0, 1); guard the log's argument away from zero.
        return -math.log(max(1.0 - raw, 1e-300)) / weight
