"""Share as a bare (ids, weights) selector — the O(1) ``placeonecopy``.

Section 3.3 of the paper obtains O(k) lookups by pairing the precomputed
state distributions with "an algorithm for the placement of a single copy"
that runs in (near-)constant time.  Share is the natural candidate: after
an O(n log n) build, a lookup is one binary search over the precomputed
circle segments plus a weighted rendezvous over the (expected
O(stretch)-sized) candidate set — and, unlike an alias table, it *adapts*:
small weight changes only perturb interval lengths, moving a proportional
fraction of the keys.

An owner's interval has length ``stretch * weight / total``; lengths above
1 wrap around the circle, contributing ``floor(length)`` full covers (a
constant *multiplicity* at every point) plus one fractional arc.  The
candidate rendezvous weights each owner by its local multiplicity, which
is what makes the shares track the weights as the stretch grows.

This module is the :class:`~repro.placement.base.WeightedPlacer` face of
the same construction as :class:`~repro.placement.share.SharePlacer`
(which works on :class:`~repro.types.BinSpec` capacities).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Sequence, Tuple

from ..hashing.primitives import (
    derive_base,
    unit_from_base,
    unit_from_base_open,
    unit_interval,
)
from .base import WeightedPlacer
from .rendezvous import rendezvous_score
from .share import default_stretch


def build_segments(
    owners: Sequence[Tuple[str, float]], namespace: str, stretch: float
):
    """Shared Share-geometry builder.

    Args:
        owners: (owner, relative weight) pairs; weights should sum to ~1.
        namespace: Hash salt for interval starts.
        stretch: Interval stretch factor.

    Returns:
        ``(boundaries, covers, multiplicity)`` — the sorted segment starts,
        the covering owner tuple per segment, and each owner's whole-circle
        multiplicity (0 for short intervals).
    """
    pieces: List[Tuple[float, float, str]] = []
    multiplicity: Dict[str, int] = {}
    for owner, weight in owners:
        if weight <= 0:
            continue
        length = stretch * weight
        wraps = int(length)
        if wraps:
            multiplicity[owner] = wraps
        fraction = length - wraps
        if fraction <= 0:
            continue
        start = unit_interval(namespace, "interval", owner)
        end = start + fraction
        if end <= 1.0:
            pieces.append((start, end, owner))
        else:
            pieces.append((start, 1.0, owner))
            pieces.append((0.0, end - 1.0, owner))

    events: List[Tuple[float, int, str]] = []
    for start, end, owner in pieces:
        events.append((start, +1, owner))
        events.append((end, -1, owner))
    events.sort(key=lambda item: (item[0], -item[1]))

    boundaries: List[float] = [0.0]
    covers: List[Tuple[str, ...]] = []
    active: Dict[str, int] = {}
    position = 0.0
    for point, delta, owner in events:
        if point > position:
            covers.append(tuple(sorted(active)))
            boundaries.append(point)
            position = point
        count = active.get(owner, 0) + delta
        if count:
            active[owner] = count
        else:
            active.pop(owner, None)
    covers.append(tuple(sorted(active)))
    return boundaries, covers, multiplicity


def local_weights(
    segment: Tuple[str, ...], multiplicity: Dict[str, int]
) -> Dict[str, float]:
    """Candidate weights at a point: multiplicity plus the local arcs."""
    weights: Dict[str, float] = {
        owner: float(count) for owner, count in multiplicity.items()
    }
    for owner in segment:
        weights[owner] = weights.get(owner, 0.0) + 1.0
    return weights


class ShareWeightedPlacer(WeightedPlacer):
    """(ids, weights) Share selector with precomputed segments."""

    def __init__(
        self,
        ids: Sequence[str],
        weights: Sequence[float],
        namespace: str,
        stretch: float = 0.0,
    ) -> None:
        if len(ids) != len(weights) or not ids:
            raise ValueError("ids and weights must be equal-length, non-empty")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        self._namespace = namespace
        self._ids = list(ids)
        self._weights = [float(weight) for weight in weights]
        self._stretch = stretch if stretch > 0 else default_stretch(len(ids))
        self._boundaries, self._covers, self._multiplicity = build_segments(
            [(owner, weight / total) for owner, weight in zip(ids, weights)],
            namespace,
            self._stretch,
        )
        self._ball_base = derive_base(namespace, "ball")
        self._pick_bases = {
            owner: derive_base(namespace, "pick", owner) for owner in ids
        }

    def place(self, address: int) -> str:
        position = unit_from_base(self._ball_base, address)
        index = bisect.bisect_right(self._boundaries, position) - 1
        candidates = local_weights(self._covers[index], self._multiplicity)
        if not candidates:
            # Uncovered gap (rare with logarithmic stretch): fall back to a
            # weighted rendezvous over everything, keeping lookups total.
            candidates = {
                owner: weight
                for owner, weight in zip(self._ids, self._weights)
                if weight > 0
            }
        best_id = None
        best_score = -math.inf
        for owner, weight in candidates.items():
            uniform = unit_from_base_open(self._pick_bases[owner], address)
            score = rendezvous_score(weight, uniform)
            if score > best_score:
                best_score = score
                best_id = owner
        assert best_id is not None
        return best_id


def make_share(
    ids: Sequence[str], weights: Sequence[float], namespace: str
) -> ShareWeightedPlacer:
    """Factory with the ``WeightedPlacerFactory`` signature."""
    return ShareWeightedPlacer(ids, weights, namespace)
