"""Alias-table placement: exactly fair, O(1) lookups, zero adaptivity.

One hash draw per ball feeds a Walker alias table over the bins.  The share
of each bin equals its weight *exactly*, and a lookup costs O(1) — this is
the building block behind the O(k) Redundant Share variant of Section 3.3.

The price is adaptivity: the table is rebuilt on any configuration change and
ball draws are not correlated with bin identities, so in expectation a
constant fraction of *all* balls moves when a bin enters or leaves.  The
ablation bench ``bench_table_placeonecopy_ablation`` quantifies this
trade-off against rendezvous and consistent hashing.
"""

from __future__ import annotations

from typing import Sequence

from ..hashing.alias import build_selector
from ..hashing.primitives import unit_interval
from ..types import BinSpec
from .base import SingleCopyPlacer, WeightedPlacer


class AliasWeightedPlacer(WeightedPlacer):
    """(ids, weights) alias-table selector."""

    def __init__(
        self, ids: Sequence[str], weights: Sequence[float], namespace: str
    ) -> None:
        if len(ids) != len(weights) or not ids:
            raise ValueError("ids and weights must be equal-length, non-empty")
        self._ids = list(ids)
        self._selector = build_selector([float(weight) for weight in weights])
        self._namespace = namespace

    def place(self, address: int) -> str:
        draw = unit_interval(self._namespace, "ball", address)
        return self._ids[self._selector.select(draw)]


class AliasPlacer(SingleCopyPlacer):
    """Capacity-weighted alias-table placement as a standalone strategy."""

    name = "alias"

    def __init__(self, bins: Sequence[BinSpec], namespace: str = "") -> None:
        super().__init__(bins, namespace)
        self._selector = AliasWeightedPlacer(
            [spec.bin_id for spec in self._bins],
            [float(spec.capacity) for spec in self._bins],
            self._namespace,
        )

    def place(self, address: int) -> str:
        return self._selector.place(address)


def make_alias(
    ids: Sequence[str], weights: Sequence[float], namespace: str
) -> AliasWeightedPlacer:
    """Factory with the ``WeightedPlacerFactory`` signature."""
    return AliasWeightedPlacer(ids, weights, namespace)
