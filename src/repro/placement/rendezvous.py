"""Weighted rendezvous hashing (highest random weight).

The cleanest *perfectly fair* single-copy strategy for heterogeneous bins,
used as the default ``placeonecopy`` backend of Redundant Share:

    score(bin) = - weight(bin) / ln(u)        u = hash(bin, address) in (0,1)

and the ball goes to the bin with the highest score.  Because
``-w/ln(u) > t  <=>  u > exp(-w/t)``, the score is distributed like an
exponential race with rate ``1/w``, so

    P(bin i wins) = w_i / sum_j w_j            (exactly)

Rendezvous is 1-competitive for adaptivity: adding a bin moves exactly the
balls the new bin wins (a ``w_new/W`` fraction), removing a bin moves exactly
its own balls, and no other assignment changes — each bin's score is
independent of the others.

Lookup is O(n); the O(1) alternative (at the cost of adaptivity) is
:mod:`repro.placement.alias_placer`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from ..hashing.primitives import derive_base, unit_from_base_open
from ..types import BinSpec
from .base import SingleCopyPlacer, WeightedPlacer


def rendezvous_score(weight: float, uniform: float) -> float:
    """The HRW score ``-w / ln(u)`` for a draw ``u`` in (0, 1)."""
    return -weight / math.log(uniform)


class WeightedRendezvous(WeightedPlacer):
    """Bare (ids, weights) rendezvous selector used inside Redundant Share."""

    def __init__(
        self, ids: Sequence[str], weights: Sequence[float], namespace: str
    ) -> None:
        if len(ids) != len(weights):
            raise ValueError("ids and weights must have equal length")
        if not ids:
            raise ValueError("at least one id is required")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one weight must be positive")
        self._ids = list(ids)
        self._weights = list(weights)
        self._namespace = namespace
        # Per-id salt bases: the hot loop then only mixes integers.
        self._entries = [
            (bin_id, weight, derive_base(namespace, bin_id))
            for bin_id, weight in zip(self._ids, self._weights)
            if weight > 0
        ]

    def place(self, address: int) -> str:
        best_id = None
        best_score = -math.inf
        for bin_id, weight, base in self._entries:
            uniform = unit_from_base_open(base, address)
            score = -weight / math.log(uniform)
            if score > best_score:
                best_score = score
                best_id = bin_id
        assert best_id is not None  # guaranteed by constructor validation
        return best_id

    def top(self, address: int, count: int):
        """The ``count`` highest-scoring ids, best first."""
        scored = sorted(
            (
                (-weight / math.log(unit_from_base_open(base, address)), bin_id)
                for bin_id, weight, base in self._entries
            ),
            reverse=True,
        )
        return [bin_id for _, bin_id in scored[:count]]


class RendezvousPlacer(SingleCopyPlacer):
    """Capacity-weighted rendezvous hashing as a standalone strategy."""

    name = "rendezvous"

    def __init__(self, bins: Sequence[BinSpec], namespace: str = "") -> None:
        super().__init__(bins, namespace)
        self._selector = WeightedRendezvous(
            [spec.bin_id for spec in self._bins],
            [float(spec.capacity) for spec in self._bins],
            self._namespace,
        )

    def place(self, address: int) -> str:
        return self._selector.place(address)

    def place_top(self, address: int, count: int) -> List[str]:
        """The ``count`` highest-scoring bins, in descending score order.

        This is the classic (trivial, in the paper's terminology) way of
        deriving k replicas from rendezvous hashing; exposed so the baseline
        comparison benches can exercise it.
        """
        if count > len(self._bins):
            raise ValueError(
                f"requested {count} bins, only {len(self._bins)} available"
            )
        return self._selector.top(address, count)


def make_rendezvous(
    ids: Sequence[str], weights: Sequence[float], namespace: str
) -> WeightedRendezvous:
    """Factory with the :data:`~repro.placement.base.WeightedPlacerFactory`
    signature; the default ``placeonecopy`` backend."""
    return WeightedRendezvous(ids, weights, namespace)
