"""Epoch-keyed cache of precomputed placement state.

The O(k) variant (Section 3.3) front-loads its cost into per-state
conditional-distribution tables; building them is O(k·n) work plus one
hash-base derivation per state.  A process often builds *many* strategy
instances over the same configuration — every ``Cluster`` reconfiguration
calls the strategy factory, benchmarks build scalar/batch pairs, tests
build cold clones — so the tables are worth sharing.

Sharing cached state across *immutable* instances is only safe while the
configuration world they describe is stable.  The invalidation contract
mirrors the walk-cache one pinned by
``tests/cluster/test_walk_cache_invalidation.py``: strategy instances are
immutable snapshots, and :class:`~repro.cluster.cluster.Cluster` swaps in
a fresh instance on every reconfiguration.  Each swap advances the global
*placement epoch* (:func:`bump_epoch`); cache entries are keyed by the
epoch they were built under, so a strategy built after a swap can never
see tables from before it — even when the configuration fingerprint is
identical (e.g. a device removed and re-added with a different capacity
hiding behind the same id set).

Entries are additionally keyed by a *fingerprint* of everything the
tables depend on (namespace, replication degree, selector, the ordered
(id, capacity) vector), so unrelated strategies never collide within an
epoch.

Instrumented through :mod:`repro.obs` when a sink is enabled:
``placement.precompute.hits`` / ``placement.precompute.misses`` counters
and a ``placement.precompute.build`` trace event per rebuild.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from .. import obs

#: Bounded number of cached fingerprints; FIFO eviction.  Each entry is a
#: handful of small tables, so the bound exists for hygiene, not memory
#: pressure.
_CACHE_CAPACITY = 64

_epoch = 0


def current_epoch() -> int:
    """The global placement epoch (monotonic; advanced by cluster swaps)."""
    return _epoch


def bump_epoch() -> int:
    """Advance the placement epoch and return the new value.

    Called by :class:`~repro.cluster.cluster.Cluster` whenever it swaps
    strategy instances (construction, rebalance, lazy add/remove) —
    entries built under earlier epochs become unreachable, which is the
    cache-side half of the walk-cache invalidation contract.
    """
    global _epoch
    _epoch += 1
    return _epoch


class PrecomputeCache:
    """Epoch-checked, fingerprint-keyed store of precomputed state."""

    def __init__(self, capacity: int = _CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._entries: Dict[Hashable, Tuple[int, Any]] = {}
        self._hits = 0
        self._misses = 0

    def get(self, fingerprint: Hashable, epoch: int) -> Optional[Any]:
        """Return the cached value for ``fingerprint`` at ``epoch``.

        A fingerprint stored under a different epoch is stale: it is
        evicted and the lookup counts as a miss.
        """
        entry = self._entries.get(fingerprint)
        if entry is not None and entry[0] == epoch:
            self._hits += 1
            if obs.sink().enabled:
                obs.metrics().counter("placement.precompute.hits").add(1)
            return entry[1]
        if entry is not None:
            del self._entries[fingerprint]
        self._misses += 1
        if obs.sink().enabled:
            obs.metrics().counter("placement.precompute.misses").add(1)
        return None

    def put(self, fingerprint: Hashable, epoch: int, value: Any) -> Any:
        """Store ``value`` for ``fingerprint`` at ``epoch`` (FIFO bound)."""
        if fingerprint not in self._entries and (
            len(self._entries) >= self._capacity
        ):
            self._entries.pop(next(iter(self._entries)))
        self._entries[fingerprint] = (epoch, value)
        sink = obs.sink()
        if sink.enabled:
            sink.emit("placement.precompute.build", entries=len(self._entries))
        return value

    def clear(self) -> None:
        """Drop every entry (hit/miss totals are preserved)."""
        self._entries.clear()

    def info(self) -> Dict[str, int]:
        """Occupancy and lifetime hit/miss totals."""
        return {
            "entries": len(self._entries),
            "capacity": self._capacity,
            "hits": self._hits,
            "misses": self._misses,
            "epoch": _epoch,
        }


#: The process-wide cache shared by every strategy instance.
_SHARED = PrecomputeCache()


def shared_cache() -> PrecomputeCache:
    """The process-wide precompute cache."""
    return _SHARED


def clear_shared_cache() -> None:
    """Drop all shared entries — test isolation / operational reset."""
    _SHARED.clear()
