"""Shared vectorized placement kernels.

Every batch engine in this library is assembled from the same handful of
idioms, first proven one strategy at a time (the Algorithm 2/4 hazard
scan in :mod:`repro.core.redundant_share`, the ``searchsorted`` gather in
:mod:`repro.core.fast_variant`, the masked rendezvous races in
:mod:`repro.placement.trivial`) and now extracted here so new strategies
port onto tested building blocks instead of re-deriving them:

* **Single-pass SplitMix64 premix** — :func:`premix` mixes the address
  vector once; every subsequent draw is then pure integer work
  (``u64_from_base(base, a) == sm64(sm64(base ^ sm64(a)))``), shared by
  all (copy, bin) draws of the batch.
* **Blocked score matrices** — :func:`blocks` carves the batch into
  :data:`BLOCK`-sized slices so the (addresses × bins) float64 matrices
  stay L2-sized; results are independent per address, so blocking can
  never change them.
* **Draw matrices** — :func:`open_draw_matrix` evaluates
  ``unit_from_base_open(base_j, a_i)`` for a whole block at once,
  bit-for-bit identical to the scalar pipeline (the uint64 → float64
  rounding is the same in both).
* **Guarded selection** — :func:`argmax_with_guard` /
  :func:`topk_with_guard` implement masked (without-replacement) argmax
  races with the sub-ulp :data:`TIE_GUARD` contract below.
* **CDF gather** — :func:`cdf_gather` runs
  :meth:`repro.hashing.alias.CumulativeTable.select` as one
  ``searchsorted`` over *exactly* the scalar table's boundaries.

The ``TIE_GUARD`` contract
--------------------------

NumPy's SIMD ``log`` may differ from ``math.log`` by 1 ulp, so a
vectorized score race can disagree with its scalar reference when two
scores are within ~1e-15 relative of each other.  The kernels therefore
never decide close calls: any row whose winning margin is at most
``abs(best) * TIE_GUARD`` is reported back as *unsafe*, and the calling
strategy re-derives that address with its scalar ``place()`` — the
scalar loop is always the authority.  Margins above the guard are
provably identical under both logs, so the batch stays bit-exact without
giving up the vectorized bulk.  Strategy authors porting onto these
kernels must (a) compare like with like — the vector leg must compute
the *same float expression* as the scalar loop, e.g. ``(-w) / log(u)``,
not ``-w * (1 / log(u))`` — and (b) route every unsafe row through the
scalar path before publishing the batch.

Legs
----

Every kernel has a NumPy leg and a pure-Python leg, switched on
:func:`repro._compat.get_numpy` exactly like
:mod:`repro.hashing.primitives` (so ``REPRO_PURE_PYTHON=1`` flips both
at once).  The pure legs return plain lists with element-wise identical
values; strategies normally bypass them (their pure fallback is the
scalar ``place()`` loop), but the kernel tests pin the equivalence so
either leg can serve as the oracle for the other.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from .. import obs
from .._compat import get_numpy
from ..hashing.primitives import (
    _INV_2_64,
    _MASK64,
    as_u64_array,
    splitmix64,
    splitmix64_array,
    unit_from_base,
    units_from_base,
)

#: Relative score margin below which a vectorized race defers to the
#: scalar loop (see "The TIE_GUARD contract" above).
TIE_GUARD = 1e-9

#: Addresses per vector block.  The engines materialise several
#: (addresses × bins) float64 matrices per draw; blocking keeps that
#: working set around L2-sized so throughput does not collapse to main
#: memory bandwidth on large batches.
BLOCK = 8192


def blocks(count: int, block: int = BLOCK) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` slices covering ``range(count)`` block-wise."""
    for start in range(0, count, block):
        yield start, min(start + block, count)


def premix(addresses: Sequence[int]):
    """SplitMix64-mix an address vector once, for reuse by every draw.

    Returns a ``uint64`` array (NumPy leg) or a list of ints (pure leg);
    either way element ``i`` equals ``splitmix64(addresses[i] & 2**64-1)``
    — the inner mix of ``u64_from_base``, shared across all bases.
    """
    np = get_numpy()
    if np is None:
        return [splitmix64(address & _MASK64) for address in addresses]
    return splitmix64_array(as_u64_array(addresses))


def draws_from_premixed(base: int, mixed):
    """Closed-interval ``[0, 1)`` draws for one salt base over premixed
    addresses.

    Element ``i`` equals ``unit_from_base(base, a_i)`` where ``mixed[i]``
    is ``premix([a_i, ...])[i]``; used by the hazard-scan and CDF-gather
    engines, which consume plain (non-open) uniforms.
    """
    np = get_numpy()
    if np is None:
        return [
            splitmix64(splitmix64(base ^ value)) * _INV_2_64
            for value in mixed
        ]
    state = splitmix64_array(splitmix64_array(np.uint64(base) ^ mixed))
    return state.astype(np.float64) * _INV_2_64


def state_matrix(bases, mixed):
    """First ``u64_from_base`` fold: rows = addresses, cols = bases.

    Entry ``(i, j)`` equals ``sm64(bases[j] ^ sm64(a_i))`` — the hash
    state after folding the address, before any further per-draw values.
    Multi-value draws (CRUSH's ``(address, replica, attempt)``) fold the
    remaining values in with :func:`fold_salt` and finish with
    :func:`open_draws_from_state`; single-value draws can go straight to
    the finisher (that composition is :func:`open_draw_matrix`).
    """
    np = get_numpy()
    if np is None:
        return [
            [splitmix64(base ^ value) for base in bases] for value in mixed
        ]
    return splitmix64_array(
        np.asarray(bases, dtype=np.uint64)[None, :] ^ mixed[:, None]
    )


def fold_salt(states, salt: int):
    """Fold one scalar draw value into running ``u64_from_base`` states.

    Element-wise ``sm64(state ^ sm64(salt))`` over an array (or nested
    list) of states — one step of the ``u64_from_base`` chain with the
    same ``salt`` for the whole batch, e.g. CRUSH's replica index or
    retry attempt.
    """
    np = get_numpy()
    mixed_salt = splitmix64(salt & _MASK64)
    if np is None:
        def _fold(item):
            if isinstance(item, list):
                return [_fold(entry) for entry in item]
            return splitmix64(item ^ mixed_salt)

        return _fold(states)
    return splitmix64_array(states ^ np.uint64(mixed_salt))


def open_draws_from_state(states):
    """Finish ``u64_from_base`` states into open-interval ``(0, 1)`` draws.

    Element-wise ``(sm64(state) | 1) * 2**-64`` — the final mix plus the
    open-interval mapping of ``unit_from_base_open``, bit-for-bit.
    """
    np = get_numpy()
    if np is None:
        def _draw(item):
            if isinstance(item, list):
                return [_draw(entry) for entry in item]
            return (splitmix64(item) | 1) * _INV_2_64

        return _draw(states)
    state = splitmix64_array(states)
    return (state | np.uint64(1)).astype(np.float64) * _INV_2_64


def open_draw_matrix(bases, mixed):
    """Open-interval ``(0, 1)`` draw matrix: rows = addresses, cols = bases.

    Entry ``(i, j)`` equals ``unit_from_base_open(bases[j], a_i)`` — the
    draw the scalar rendezvous/straw races consume.  NumPy leg returns a
    float64 matrix; pure leg a list of per-address lists.
    """
    return open_draws_from_state(state_matrix(bases, mixed))


def hrw_score_matrix(weights, uniforms):
    """Rendezvous (highest-random-weight) scores ``-w / ln(u)``.

    Computes exactly the scalar expression ``-weight / log(uniform)``
    (unary minus on the weight, then one division) so clear-margin rows
    agree with the scalar race bit-for-bit.
    """
    np = get_numpy()
    if np is None:
        return [
            [-weight / math.log(uniform) for weight, uniform in zip(weights, row)]
            for row in uniforms
        ]
    return (-np.asarray(weights, dtype=np.float64))[None, :] / np.log(uniforms)


def straw2_score_matrix(weights, uniforms):
    """CRUSH straw2 scores ``ln(u) / w`` (negative; closest to 0 wins)."""
    np = get_numpy()
    if np is None:
        return [
            [math.log(uniform) / weight for weight, uniform in zip(weights, row)]
            for row in uniforms
        ]
    return np.log(uniforms) / np.asarray(weights, dtype=np.float64)[None, :]


def argmax_with_guard(scores, guard: float = TIE_GUARD):
    """Row-wise argmax plus the mask of rows the guard refuses to decide.

    Returns ``(winners, unsafe)``: for each row the index of its maximum
    entry (first index on exact ties, like the scalar ``>`` races), and
    True where the margin over the runner-up is at most
    ``abs(best) * guard`` — those rows must be settled by the caller's
    scalar path.  **Consumes the winning entries**: on the NumPy leg the
    per-row maxima are left at ``-inf`` so repeated calls implement a
    without-replacement race (this is what the proven trivial-replication
    engine does between draws); copy the matrix first if it must survive.
    """
    np = get_numpy()
    if np is None:
        winners: List[int] = []
        unsafe: List[bool] = []
        for row in scores:
            best = -math.inf
            runner = -math.inf
            winner = 0
            for index, score in enumerate(row):
                if score > best:
                    runner = best
                    best = score
                    winner = index
                elif score > runner:
                    runner = score
            winners.append(winner)
            unsafe.append((best - runner) <= abs(best) * guard)
            row[winner] = -math.inf
        return winners, unsafe
    rows = np.arange(scores.shape[0])
    winners = np.argmax(scores, axis=1)
    best = scores[rows, winners]
    scores[rows, winners] = -np.inf
    runner = np.max(scores, axis=1) if scores.shape[1] else best
    unsafe = (best - runner) <= np.abs(best) * guard
    return winners, unsafe


def topk_with_guard(scores, count: int, guard: float = TIE_GUARD):
    """Top-``count`` without-replacement race over a score matrix.

    Returns ``(winners, unsafe)`` where ``winners[d]`` holds the d-th
    draw's per-row winner (descending score order, matching a scalar
    sort) and ``unsafe`` flags rows where *any* draw was decided within
    the guard.  Consumes ``scores`` (winners are masked to ``-inf``).
    """
    np = get_numpy()
    winners = []
    if np is None:
        unsafe = [False] * len(scores)
        for _ in range(count):
            draw_winners, draw_unsafe = argmax_with_guard(scores, guard)
            winners.append(draw_winners)
            unsafe = [a or b for a, b in zip(unsafe, draw_unsafe)]
        return winners, unsafe
    unsafe = np.zeros(scores.shape[0], dtype=bool)
    for _ in range(count):
        draw_winners, draw_unsafe = argmax_with_guard(scores, guard)
        winners.append(draw_winners)
        unsafe |= draw_unsafe
    return winners, unsafe


def cdf_gather(boundaries, draws):
    """Batch :meth:`~repro.hashing.alias.CumulativeTable.select`.

    ``boundaries`` must be the table's own :meth:`boundaries` — sharing
    the exact floats the scalar binary search compares against is what
    makes the ``searchsorted`` gather bit-identical to it.
    """
    np = get_numpy()
    if np is None:
        import bisect

        return [bisect.bisect_right(boundaries, draw) for draw in draws]
    return np.searchsorted(
        np.asarray(boundaries, dtype=np.float64), draws, side="right"
    )


def record_tie_recomputes(kernel: str, count: int) -> None:
    """Count scalar re-derivations forced by the tie guard.

    Only recorded when ``count > 0``: guard trips are astronomically rare
    (sub-ulp margins), and recording zero would create the counter on the
    NumPy leg only, breaking the byte-wise trace equivalence the obs
    layer guarantees between legs.
    """
    if count and obs.sink().enabled:
        obs.metrics().counter(
            f"placement.kernel.{kernel}.tie_recomputes"
        ).add(count)


def bernoulli_indices(base: int, count: int, probability: float):
    """Indices in ``[0, count)`` whose derived uniform draw beats ``probability``.

    The draw for index ``i`` is ``unit_from_base(base, i)`` on both legs
    (the uint64 -> float64 rounding is identical, see
    :func:`repro.hashing.primitives.units_from_base`), so the selected
    index set is bit-for-bit the same with and without NumPy.  The fleet
    chaos engine uses one call per epoch — ``base`` derived from
    ``(seed, epoch)`` — to draw which devices fail that epoch.

    Returns ascending indices: an ``int64`` array with NumPy, a list of
    ints without.
    """
    np = get_numpy()
    if np is None:
        return [
            index
            for index in range(count)
            if unit_from_base(base, index) < probability
        ]
    draws = units_from_base(base, np.arange(count, dtype=np.int64))
    return np.flatnonzero(draws < probability).astype(np.int64)


def class_histogram(values, classes: int):
    """Occurrence counts of each class ``0 .. classes - 1``.

    ``values`` must already lie in range.  Returns a plain list of ints
    on both legs (``np.bincount`` with ``minlength`` on the NumPy leg),
    so callers can compare histograms across legs with ``==``.
    """
    np = get_numpy()
    if np is None:
        counts = [0] * classes
        for value in values:
            counts[value] += 1
        return counts
    return (
        np.bincount(np.asarray(values, dtype=np.int64), minlength=classes)
        .astype(int)
        .tolist()
    )
