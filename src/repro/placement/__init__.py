"""Placement strategies: the paper's baselines and building blocks.

Single-copy placers (the ``placeonecopy`` role):

* :class:`~repro.placement.rendezvous.RendezvousPlacer` — exactly fair, O(n).
* :class:`~repro.placement.consistent_hashing.ConsistentHashingPlacer` —
  Karger et al., approximately fair, O(log n).
* :class:`~repro.placement.share.SharePlacer` — Share (SPAA 2002).
* :class:`~repro.placement.sieve.SievePlacer` — Sieve (SPAA 2002).
* :class:`~repro.placement.distance.LinearDistancePlacer` /
  :class:`~repro.placement.distance.LogDistancePlacer` — weighted DHTs
  (SPAA 2005).
* :class:`~repro.placement.alias_placer.AliasPlacer` — exactly fair, O(1),
  non-adaptive.

Replication strategies are populated by :mod:`repro.placement.trivial`,
:mod:`repro.placement.rush`, :mod:`repro.placement.crush`,
:mod:`repro.placement.striping` and :mod:`repro.placement.rpdp`; the
paper's own strategy (and the reallocation-free Sequential Checking)
lives in :mod:`repro.core`.
"""

from .alias_placer import AliasPlacer, AliasWeightedPlacer, make_alias
from .base import (
    BatchPlacement,
    ReplicationStrategy,
    SingleCopyPlacer,
    WeightedPlacer,
    check_placement,
)
from .consistent_hashing import (
    ConsistentHashingPlacer,
    RingWeightedPlacer,
    make_ring_placer,
)
from .distance import LinearDistancePlacer, LogDistancePlacer
from .crush import (
    Bucket,
    ChooseleafCrush,
    CrushStrategy,
    ListBucket,
    Straw2Bucket,
    TreeBucket,
    UniformBucket,
    make_bucket,
    two_level_map,
)
from .registry import (
    StrategyEntry,
    create,
    lookup,
    registered_strategies,
    strategy_names,
)
from .rendezvous import RendezvousPlacer, WeightedRendezvous, make_rendezvous
from .rpdp import ResidualPerformancePlacement, utilization
from .rush import RushStrategy, SubCluster, rush_from_capacities, rush_tree
from .share import SharePlacer, default_stretch
from .share_weighted import ShareWeightedPlacer, make_share
from .sieve import SievePlacer
from .striping import StripingStrategy, WeightedStripingStrategy
from .trivial import (
    TrivialReplication,
    trivial_miss_probability,
    trivial_wasted_fraction,
)

__all__ = [
    "AliasPlacer",
    "AliasWeightedPlacer",
    "BatchPlacement",
    "Bucket",
    "ChooseleafCrush",
    "ConsistentHashingPlacer",
    "CrushStrategy",
    "ListBucket",
    "ResidualPerformancePlacement",
    "RushStrategy",
    "StrategyEntry",
    "Straw2Bucket",
    "StripingStrategy",
    "TreeBucket",
    "SubCluster",
    "TrivialReplication",
    "UniformBucket",
    "WeightedStripingStrategy",
    "LinearDistancePlacer",
    "LogDistancePlacer",
    "RendezvousPlacer",
    "ReplicationStrategy",
    "RingWeightedPlacer",
    "SharePlacer",
    "ShareWeightedPlacer",
    "SievePlacer",
    "SingleCopyPlacer",
    "WeightedPlacer",
    "WeightedRendezvous",
    "check_placement",
    "create",
    "default_stretch",
    "lookup",
    "make_alias",
    "make_bucket",
    "make_rendezvous",
    "make_share",
    "make_ring_placer",
    "registered_strategies",
    "rush_from_capacities",
    "rush_tree",
    "strategy_names",
    "trivial_miss_probability",
    "trivial_wasted_fraction",
    "two_level_map",
    "utilization",
]
