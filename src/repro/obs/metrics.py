"""Counters and histograms — the aggregation half of the observability
layer.

Dependency-free and deliberately small: a :class:`Counter` is a named
monotonic total, a :class:`Histogram` buckets observations under fixed
upper bounds (exponential by default, suitable for probe depths, batch
sizes and queue depths alike), and a :class:`MetricsRegistry` owns both by
name so instrumented modules never need to share objects explicitly.

All values are plain Python ints/floats; instrumentation sites convert
NumPy scalars before recording so the pure-Python and vectorized legs
produce identical snapshots (the equivalence tests assert this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds: 1, 2, 4, ... 65536 (plus the
#: implicit overflow bucket).  Wide enough for scan depths, batch sizes
#: and simulator queue depths without configuration.
DEFAULT_BUCKETS: Tuple[int, ...] = tuple(2 ** i for i in range(17))


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current total."""
        return self._value

    def add(self, amount: int = 1) -> None:
        """Increase the total.

        Raises:
            ValueError: for negative amounts (counters are monotonic).
        """
        if amount < 0:
            raise ValueError("counters are monotonic; use a gauge instead")
        self._value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary.

    Bucket ``i`` counts observations ``<= bounds[i]`` (and greater than
    ``bounds[i-1]``); values above the last bound land in the overflow
    bucket.  Cumulative views are derived, not stored.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "_min", "_max")

    def __init__(
        self, name: str, bounds: Optional[Sequence[Number]] = None
    ) -> None:
        self.name = name
        self.bounds: Tuple[Number, ...] = tuple(bounds or DEFAULT_BUCKETS)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: float = 0.0
        self._min: Optional[Number] = None
        self._max: Optional[Number] = None

    def observe(self, value: Number, count: int = 1) -> None:
        """Record ``count`` observations of ``value``.

        The bulk form is what batch instrumentation uses — e.g. a scan
        over 100k addresses records one ``observe(depth, n)`` per distinct
        depth instead of 100k calls.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self.bucket_counts[self._bucket_index(value)] += count
        self.count += count
        self.total += value * count
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def observe_many(self, values: Iterable[Number]) -> None:
        """Record one observation per element."""
        for value in values:
            self.observe(value)

    def _bucket_index(self, value: Number) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def minimum(self) -> Optional[Number]:
        """Smallest observation, or None when empty."""
        return self._min

    @property
    def maximum(self) -> Optional[Number]:
        """Largest observation, or None when empty."""
        return self._max

    def quantile(self, q: float) -> Optional[Number]:
        """Approximate ``q``-quantile: the upper bound of the bucket the
        quantile falls in (None when empty; the overflow bucket reports
        the maximum observed value).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        for index, bucket in enumerate(self.bucket_counts):
            running += bucket
            if running >= target and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self._max
        return self._max

    def snapshot(self) -> Dict[str, object]:
        """Summary dict (what reports and tests compare)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bounds, self.bucket_counts)
                if count
            },
            "overflow": self.bucket_counts[-1],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Named counters and histograms with create-on-first-use semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, bounds: Optional[Sequence[Number]] = None
    ) -> Histogram:
        """Get (or create) the histogram ``name``.

        ``bounds`` only applies on creation; later callers share the
        existing instance regardless.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def counters(self) -> Dict[str, int]:
        """All counter totals by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Histogram]:
        """All histogram objects by name (live references)."""
        return dict(sorted(self._histograms.items()))

    def filtered(self, prefix: str) -> "MetricsRegistry":
        """A view holding only metrics whose name starts with ``prefix``.

        The view shares the live counter/histogram instances — it is a
        scoped window for rendering, not a copy.  Used to keep reports
        to one subsystem's namespace (accelerator-internal metrics such
        as the placement precompute cache only exist on the NumPy leg,
        so a leg-stable report must exclude them).
        """
        view = MetricsRegistry()
        for name, counter in self._counters.items():
            if name.startswith(prefix):
                view._counters[name] = counter
        for name, histogram in self._histograms.items():
            if name.startswith(prefix):
                view._histograms[name] = histogram
        return view

    def snapshot(self) -> Dict[str, object]:
        """Full registry state as plain data (report/test input)."""
        return {
            "counters": self.counters(),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (used between observed scenarios)."""
        self._counters.clear()
        self._histograms.clear()
