"""Structured event bus — the tracing half of the observability layer.

A :class:`TraceSink` receives structured events (a kind plus free-form
JSON-compatible fields) from instrumented hot paths.  Three backends:

* :class:`NullSink` — the default; ``enabled`` is False so every
  instrumentation site skips its work entirely (zero overhead when
  observability is off, which the throughput bench enforces).
* :class:`MemorySink` — appends events to a list; what tests and the
  ``repro stats`` report consume.
* :class:`JsonlSink` — streams one JSON object per event to a file, the
  production-shaped backend for offline analysis.

:class:`TeeSink` fans one event stream out to several sinks (e.g. keep an
in-memory view while also persisting JSONL).

Instrumentation sites always follow the same pattern::

    sink = obs.sink()
    if sink.enabled:
        sink.emit("placement.batch", strategy=..., addresses=...)

so a disabled site costs one attribute read and a branch.  Event fields
must be JSON-serialisable scalars or lists — emitters convert NumPy
scalars with ``int()``/``float()`` so traces are byte-identical between
the vectorized and pure-Python legs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Sequence, Union


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes:
        sequence: Monotonic per-sink sequence number.
        kind: Dotted event type, e.g. ``"rebalance.step"``.
        fields: JSON-compatible payload describing the event.
    """

    sequence: int
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict form (what the JSONL backend writes)."""
        record: Dict[str, Any] = {"seq": self.sequence, "kind": self.kind}
        record.update(self.fields)
        return record


class TraceSink:
    """Base class of all event-bus backends.

    Subclasses set :attr:`enabled` and implement :meth:`emit`; the base is
    deliberately not abstract so :class:`NullSink` can be the base
    behaviour (accept and drop).
    """

    #: Instrumentation sites check this before doing *any* work.
    enabled: bool = True

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event (dropped by the base/null implementation)."""

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NullSink(TraceSink):
    """The disabled sink: instrumentation short-circuits on ``enabled``."""

    enabled = False


class MemorySink(TraceSink):
    """Collects events in memory for tests, reports and interactive use."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    @property
    def events(self) -> List[TraceEvent]:
        """All captured events, in emission order (snapshot copy)."""
        return list(self._events)

    def emit(self, kind: str, **fields: Any) -> None:
        self._events.append(
            TraceEvent(sequence=len(self._events), kind=kind, fields=fields)
        )

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Captured events of one kind, in order."""
        return [event for event in self._events if event.kind == kind]

    def kinds(self) -> Dict[str, int]:
        """Event count per kind (the report's summary table)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop all captured events."""
        self._events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(TraceSink):
    """Streams events as JSON Lines to a path or open text handle."""

    def __init__(self, target: Union[str, "IO[str]"]) -> None:
        """Open the stream.

        Args:
            target: A filesystem path (opened for append) or an already
                open text handle (not closed by :meth:`close`).
        """
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._sequence = 0

    def emit(self, kind: str, **fields: Any) -> None:
        event = TraceEvent(sequence=self._sequence, kind=kind, fields=fields)
        self._sequence += 1
        self._handle.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class TeeSink(TraceSink):
    """Fans each event out to several sinks (first sink drives nothing
    special — all receive every event)."""

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        self._sinks = list(sinks)

    def emit(self, kind: str, **fields: Any) -> None:
        for sink in self._sinks:
            sink.emit(kind, **fields)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into dicts (analysis helper)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
