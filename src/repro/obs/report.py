"""Render an observability snapshot as a plain-text report.

Consumed by the ``repro stats`` CLI subcommand and handy from a REPL::

    from repro import obs
    from repro.obs.report import render_report

    with obs.capture() as trace:
        ...  # run a scenario
    print(render_report(obs.metrics(), trace))
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .metrics import MetricsRegistry
from .trace import MemorySink


def _section(title: str) -> List[str]:
    return [title, "-" * len(title)]


def render_report(
    registry: MetricsRegistry,
    trace: Optional[MemorySink] = None,
    verdicts: Optional[Iterable[object]] = None,
) -> str:
    """Format counters, histograms, event counts and fairness verdicts.

    Args:
        registry: The metrics registry to snapshot.
        trace: Optional captured event stream (kind counts are shown).
        verdicts: Optional :class:`~repro.metrics.stats.FairnessVerdict`
            instances (anything with a ``summary()`` method works).
    """
    lines: List[str] = []

    if verdicts is not None:
        lines += _section("Fairness acceptance")
        for verdict in verdicts:
            lines.append("  " + verdict.summary())
        lines.append("")

    counters = registry.counters()
    lines += _section("Counters")
    if counters:
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
    else:
        lines.append("  (none recorded)")
    lines.append("")

    histograms = registry.histograms()
    lines += _section("Histograms")
    if histograms:
        for name, histogram in histograms.items():
            minimum = histogram.minimum
            maximum = histogram.maximum
            lines.append(
                f"  {name}: n={histogram.count} mean={histogram.mean:.2f}"
                f" min={minimum if minimum is not None else '-'}"
                f" max={maximum if maximum is not None else '-'}"
                f" p50={histogram.quantile(0.5)}"
                f" p99={histogram.quantile(0.99)}"
            )
    else:
        lines.append("  (none recorded)")
    lines.append("")

    if trace is not None:
        lines += _section("Trace events")
        kinds = trace.kinds()
        if kinds:
            width = max(len(kind) for kind in kinds)
            for kind in sorted(kinds):
                lines.append(f"  {kind:<{width}}  {kinds[kind]}")
        else:
            lines.append("  (no events captured)")
        lines.append("")

    return "\n".join(lines)
