"""Observability: counters, histograms and a structured event bus.

The placement/cluster/simulation hot paths are instrumented against this
package.  By default the installed sink is a :class:`~repro.obs.trace.NullSink`
whose ``enabled`` flag is False, so every instrumentation site reduces to
one attribute check — the batch-throughput bench pins the disabled
overhead below 3%.  Enabling observability is one call::

    from repro import obs

    with obs.capture() as trace:          # in-memory, metrics reset
        cluster.add_device(spec)
    print(trace.kinds())                  # {"device.added": 1, ...}
    print(obs.metrics().snapshot())

or, for production-shaped JSONL traces::

    obs.set_sink(obs.JsonlSink("cluster-trace.jsonl"))

The module-level registry aggregates counters and histograms whenever a
sink is enabled; :func:`reset_metrics` clears it between scenarios.  Both
the trace stream and the metrics snapshot are identical between the
vectorized and pure-Python code paths (the equivalence tests assert
byte-equality), so traces can be compared across environments.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import Counter, Histogram, MetricsRegistry
from .trace import (
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    TraceEvent,
    TraceSink,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "TeeSink",
    "TraceEvent",
    "TraceSink",
    "capture",
    "enabled",
    "metrics",
    "read_jsonl",
    "reset_metrics",
    "set_sink",
    "sink",
    "use_sink",
]

#: The permanently-disabled default sink (shared instance).
NULL_SINK = NullSink()

_sink: TraceSink = NULL_SINK
_registry = MetricsRegistry()


def sink() -> TraceSink:
    """The currently installed event sink (the null sink by default).

    Hot paths call this once per operation and check ``.enabled`` before
    doing any instrumentation work.
    """
    return _sink


def enabled() -> bool:
    """True when an enabled (non-null) sink is installed."""
    return _sink.enabled


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry.

    Instrumented code only records into it while a sink is enabled, so
    with observability off the registry stays empty.
    """
    return _registry


def set_sink(new_sink: Optional[TraceSink]) -> TraceSink:
    """Install ``new_sink`` (None restores the null sink); returns the
    previously installed sink so callers can restore it."""
    global _sink
    previous = _sink
    _sink = NULL_SINK if new_sink is None else new_sink
    return previous


def reset_metrics() -> None:
    """Clear every counter and histogram in the registry."""
    _registry.reset()


@contextmanager
def use_sink(new_sink: TraceSink) -> Iterator[TraceSink]:
    """Temporarily install a sink, restoring the previous one on exit."""
    previous = set_sink(new_sink)
    try:
        yield new_sink
    finally:
        set_sink(previous)


@contextmanager
def capture(reset: bool = True) -> Iterator[MemorySink]:
    """Capture events in a fresh :class:`MemorySink` for the duration.

    Args:
        reset: Also clear the metrics registry on entry (default), so the
            snapshot afterwards describes exactly the captured scenario.
    """
    if reset:
        reset_metrics()
    memory = MemorySink()
    with use_sink(memory):
        yield memory
