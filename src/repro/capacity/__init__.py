"""Capacity-efficiency theory of the paper (Section 2).

:mod:`repro.capacity.weights` holds the shared suffix-sum / round-probability
arithmetic; :mod:`repro.capacity.clipping` implements Lemma 2.1, Lemma 2.2
and Algorithm 1 (``optimalweights``).
"""

from .clipping import (
    clip_capacities,
    clipped_shares,
    is_capacity_efficient,
    max_balls,
    optimal_weights,
    wasted_capacity,
    water_fill_limit,
)
from .weights import (
    first_saturated_index,
    is_sorted_descending,
    normalize,
    primary_probabilities,
    reach_probabilities,
    round_probabilities,
    suffix_sums,
)

__all__ = [
    "clip_capacities",
    "clipped_shares",
    "first_saturated_index",
    "is_capacity_efficient",
    "is_sorted_descending",
    "max_balls",
    "normalize",
    "optimal_weights",
    "primary_probabilities",
    "reach_probabilities",
    "round_probabilities",
    "suffix_sums",
    "wasted_capacity",
    "water_fill_limit",
]
