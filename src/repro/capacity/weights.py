"""Capacity arithmetic shared by the placement strategies.

The paper works with a capacity vector ``b_0 >= b_1 >= ... >= b_{n-1}``;
nearly every formula is phrased in terms of the suffix sums
``B_i = sum_{j>=i} b_j`` and the round probabilities
``č_i = k * b_i / B_i``.  This module centralises that arithmetic so the
core algorithm, its fast variant, and the analytical tests all share one
implementation.
"""

from __future__ import annotations

from typing import List, Sequence


def suffix_sums(capacities: Sequence[float]) -> List[float]:
    """Return ``B_i = sum_{j >= i} capacities[j]`` for every ``i``.

    The returned list has ``len(capacities) + 1`` entries; the final entry is
    ``0`` so ``sums[i + 1]`` is always valid.
    """
    sums = [0.0] * (len(capacities) + 1)
    for index in range(len(capacities) - 1, -1, -1):
        sums[index] = sums[index + 1] + capacities[index]
    return sums


def is_sorted_descending(capacities: Sequence[float]) -> bool:
    """True if the vector satisfies the paper's ``b_i >= b_{i+1}`` requirement."""
    return all(
        capacities[index] >= capacities[index + 1]
        for index in range(len(capacities) - 1)
    )


def round_probabilities(capacities: Sequence[float], k: int) -> List[float]:
    """The paper's ``č_i = k * b_i / B_i`` for a descending capacity vector.

    Values may exceed 1; callers cap them at 1 (the deterministic stop of the
    while loop in Algorithms 2 and 4).

    Raises:
        ValueError: if the vector is not sorted descending, is empty, or k < 1.
    """
    if k < 1:
        raise ValueError(f"replication degree must be >= 1, got {k}")
    if not capacities:
        raise ValueError("capacity vector must not be empty")
    if not is_sorted_descending(capacities):
        raise ValueError("capacities must be sorted in descending order")
    sums = suffix_sums(capacities)
    return [
        k * capacity / sums[index] for index, capacity in enumerate(capacities)
    ]


def reach_probabilities(round_probs: Sequence[float]) -> List[float]:
    """``P_i = prod_{j < i} (1 - min(č_j, 1))``: probability round i is reached.

    The returned list has one extra entry: ``P_n`` is the probability that no
    primary was chosen at all, which must be 0 for a well-formed strategy.
    """
    reach = [1.0]
    for prob in round_probs:
        effective = min(prob, 1.0)
        reach.append(reach[-1] * (1.0 - effective))
    return reach


def primary_probabilities(capacities: Sequence[float], k: int) -> List[float]:
    """Probability that bin ``i`` is chosen as the *primary* copy.

    ``p_i = min(č_i, 1) * P_i`` — the Section 3.3 formula.  The probabilities
    sum to 1 whenever some ``č_i >= 1`` exists (guaranteed for sorted vectors
    with ``k >= 2`` and ``n >= 2``, since ``č_{n-1} = k >= 1``).
    """
    rounds = round_probabilities(capacities, k)
    reach = reach_probabilities(rounds)
    return [
        min(prob, 1.0) * reach[index] for index, prob in enumerate(rounds)
    ]


def first_saturated_index(round_probs: Sequence[float]) -> int:
    """Index ``T`` of the first round with ``č_T >= 1`` (deterministic stop).

    Raises:
        ValueError: if no round saturates (the selection could fall through).
    """
    for index, prob in enumerate(round_probs):
        if prob >= 1.0:
            return index
    raise ValueError("no saturated round: selection would not terminate")


def normalize(weights: Sequence[float]) -> List[float]:
    """Scale weights to sum to 1.

    Raises:
        ValueError: if the sum is not positive.
    """
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    return [weight / total for weight in weights]
