"""Capacity-efficiency theory: Lemmas 2.1 / 2.2 and Algorithm 1 of the paper.

A heterogeneous system can only be *perfectly fair* under k-replication if no
bin is so large that it would have to hold more than one copy of some ball.
Lemma 2.1 makes this precise: with capacities sorted descending, all capacity
is usable iff ``k * b_0 <= B``.  When the condition fails, Lemma 2.2 gives the
maximum number of storable balls via recursively *clipped* capacities
``b̂`` (Algorithm 1, ``optimalweights``): the strategies then target the
clipped shares, deliberately leaving the excess capacity of oversized bins
unused — it could never be used without violating redundancy.

Two independent formulations are implemented:

* :func:`optimal_weights` — the paper's recursive Algorithm 1, on reals.
* :func:`water_fill_limit` / :func:`clip_capacities` — the equivalent
  water-filling fixed point ``m* = max{m : sum_i min(b_i, m) >= k*m}``,
  ``b̂_i = min(b_i, m*)``.

Their agreement is property-tested in ``tests/capacity``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..exceptions import ConfigurationError
from .weights import is_sorted_descending


def is_capacity_efficient(capacities: Sequence[float], k: int) -> bool:
    """Lemma 2.1: can fairness and redundancy use *all* capacity?

    Args:
        capacities: Bin capacities sorted in descending order.
        k: Replication degree.

    Returns:
        True iff ``k * b_0 <= B``.
    """
    _validate(capacities, k)
    return k * capacities[0] <= sum(capacities)


def optimal_weights(capacities: Sequence[float], k: int) -> List[float]:
    """Algorithm 1 (``optimalweights``): recursively clip oversized bins.

    If the largest bin exceeds ``1/(k-1)`` of the rest, it is saturated: it
    will hold one copy of *every* ball, and the remaining ``k-1`` copies must
    form a ``(k-1)``-replication on the tail — so the tail is clipped
    recursively first, then the head is capped at ``1/(k-1)`` of the clipped
    tail.

    Args:
        capacities: Bin capacities sorted in descending order.
        k: Replication degree (``k >= 1``).

    Returns:
        The clipped capacity vector ``b̂`` (same order, possibly fractional).
    """
    _validate(capacities, k)
    clipped = list(map(float, capacities))
    _optimal_weights_in_place(clipped, k, start=0)
    return clipped


def _optimal_weights_in_place(capacities: List[float], k: int, start: int) -> None:
    """Recursive worker for :func:`optimal_weights` operating on a suffix."""
    if k <= 1:
        return  # single copies are unconstrained
    tail_sum = sum(capacities[start + 1 :])
    if capacities[start] * (k - 1) > tail_sum:
        _optimal_weights_in_place(capacities, k - 1, start + 1)
        tail_sum = sum(capacities[start + 1 :])
        capacities[start] = tail_sum / (k - 1)


def water_fill_limit(capacities: Sequence[float], k: int) -> float:
    """Lemma 2.2 as a fixed point: maximum storable balls ``m*``.

    ``m* = max{m : sum_i min(b_i, m) >= k * m}``.  Since the left side is
    piecewise linear and concave in ``m``, the maximum is found exactly by
    scanning the sorted breakpoints.
    """
    _validate(capacities, k)
    ordered = sorted(capacities)  # ascending
    n = len(ordered)
    prefix = 0.0  # sum of bins smaller than the current water level
    for index, level in enumerate(ordered):
        # With water level m in (ordered[index-1], ordered[index]],
        # sum_i min(b_i, m) = prefix + (n - index) * m, so the constraint
        # reads prefix + (n - index) * m >= k * m.
        remaining = n - index
        if remaining >= k:
            # Non-negative slope: the constraint holds through this segment.
            prefix += level
            continue
        candidate = prefix / (k - remaining)
        if candidate <= level:
            # The zero crossing of the concave constraint lies here.
            return candidate
        # Still feasible at the segment end; keep scanning.
        prefix += level
    # Feasible all the way up: the binding level is B / k (>= max capacity).
    return sum(capacities) / k


def clip_capacities(capacities: Sequence[float], k: int) -> List[float]:
    """Clip every capacity at the water-fill limit: ``b̂_i = min(b_i, m*)``."""
    limit = water_fill_limit(capacities, k)
    return [min(float(capacity), limit) for capacity in capacities]


def max_balls(capacities: Sequence[int], k: int) -> int:
    """Integer form of Lemma 2.2: most balls storable with k copies each.

    ``max{m in N : sum_i min(b_i, m) >= k * m}``.
    """
    _validate(capacities, k)
    return int(water_fill_limit(capacities, k) + 1e-9)


def clipped_shares(capacities: Sequence[float], k: int) -> List[float]:
    """Fair target share of each bin: ``b̂_i / sum(b̂)``.

    This is the distribution the placement strategies aim for; for capacity
    efficient systems (Lemma 2.1) it coincides with the raw relative
    capacities.
    """
    clipped = clip_capacities(capacities, k)
    total = sum(clipped)
    return [value / total for value in clipped]


def wasted_capacity(capacities: Sequence[float], k: int) -> Tuple[float, float]:
    """Capacity that redundancy makes unusable.

    Returns:
        ``(absolute, fraction)`` — total clipped-away capacity and its share
        of the raw total.
    """
    clipped = clip_capacities(capacities, k)
    raw_total = float(sum(capacities))
    lost = raw_total - sum(clipped)
    return lost, lost / raw_total


def _validate(capacities: Sequence[float], k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"replication degree must be >= 1, got {k}")
    if len(capacities) < k:
        raise ConfigurationError(
            f"need at least k={k} bins for redundancy, got {len(capacities)}"
        )
    if any(capacity <= 0 for capacity in capacities):
        raise ConfigurationError("capacities must be positive")
    if not is_sorted_descending(capacities):
        raise ConfigurationError("capacities must be sorted in descending order")
