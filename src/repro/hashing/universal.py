"""Universal hash families: tabulation and Carter-Wegman.

The paper's *compactness* criterion asks that a strategy's metadata stay
logarithmic in ``N`` and ``m`` — which presumes hash functions whose
descriptions are small and whose independence properties are sufficient
for the concentration arguments.  Two standard families are provided:

* **Simple tabulation** (Zobrist): XOR of per-byte lookup tables.
  3-independent, and by Pătraşcu-Thorup it behaves like full randomness
  for balls-into-bins style applications.  Description: 8 tables x 256
  words.
* **Carter-Wegman multiply-mod-prime**: ``h(x) = ((a x + b) mod p) mod m``
  with ``p = 2^61 - 1``.  Exactly 2-independent, two words of state.

The default pipeline (:mod:`repro.hashing.primitives`) uses a fixed mixer
for speed; these families exist for experiments that need *provable*
independence (and for the statistical tests that validate the mixer
against them).
"""

from __future__ import annotations

from typing import List

from .primitives import splitmix64

#: The Mersenne prime 2^61 - 1 used by the Carter-Wegman family.
MERSENNE_61 = (1 << 61) - 1

_MASK64 = (1 << 64) - 1


class TabulationHash:
    """Simple (Zobrist) tabulation hashing over 64-bit keys."""

    def __init__(self, seed: int = 0) -> None:
        """Derive the 8 x 256 random tables from ``seed``."""
        self._tables: List[List[int]] = []
        state = splitmix64(seed & _MASK64)
        for _ in range(8):
            table = []
            for _ in range(256):
                state = (state + 0x9E3779B97F4A7C15) & _MASK64
                table.append(splitmix64(state))
            self._tables.append(table)

    def __call__(self, key: int) -> int:
        """Hash a 64-bit key (larger ints are folded modulo 2^64)."""
        key &= _MASK64
        result = 0
        for table in self._tables:
            result ^= table[key & 0xFF]
            key >>= 8
        return result

    def unit(self, key: int) -> float:
        """Hash to ``[0, 1)``."""
        return self(key) / float(1 << 64)


class CarterWegmanHash:
    """2-independent multiply-mod-prime hashing onto ``range(buckets)``."""

    def __init__(self, buckets: int, seed: int = 0) -> None:
        """Draw the (a, b) pair for this family member from ``seed``.

        Args:
            buckets: Output range size ``m`` (``1 <= m < 2^61 - 1``).
            seed: Selects the family member deterministically.
        """
        if not 1 <= buckets < MERSENNE_61:
            raise ValueError("buckets must be in [1, 2^61 - 1)")
        self._buckets = buckets
        # a in [1, p), b in [0, p).
        self._a = 1 + splitmix64(seed * 2 + 1) % (MERSENNE_61 - 1)
        self._b = splitmix64(seed * 2 + 2) % MERSENNE_61

    @property
    def buckets(self) -> int:
        """Output range size."""
        return self._buckets

    def __call__(self, key: int) -> int:
        """Hash a key into ``range(buckets)``."""
        return ((self._a * (key % MERSENNE_61) + self._b) % MERSENNE_61) % self._buckets


def collision_probability_bound(buckets: int) -> float:
    """The universal-family guarantee: ``P(h(x) = h(y)) <= 1/m`` for x != y.

    Exposed for the statistical tests, which verify the empirical collision
    rate of :class:`CarterWegmanHash` against this bound.
    """
    if buckets < 1:
        raise ValueError("buckets must be positive")
    return 1.0 / buckets
