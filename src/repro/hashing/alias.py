"""Alias tables: O(1) weighted sampling driven by hash values.

The O(k) variant of Redundant Share (Section 3.3 of the paper) precomputes,
for every recursion state, a distribution over the remaining bins and then
draws from it in constant time.  Walker/Vose alias tables provide exactly
that: after an O(n) build, one uniform draw in ``[0, 1)`` selects an outcome
with the desired probabilities.

The tables here are *deterministic consumers* of hash values — they take the
uniform draw as an argument instead of sampling it — so the same ball address
always maps to the same outcome.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class AliasTable:
    """Walker alias table over outcomes ``0..n-1`` with given weights."""

    __slots__ = ("_size", "_prob", "_alias")

    def __init__(self, weights: Sequence[float]) -> None:
        """Build the table in O(n).

        Args:
            weights: Non-negative weights; at least one must be positive.

        Raises:
            ValueError: on empty input, negative weights, or all-zero weights.
        """
        if len(weights) == 0:
            raise ValueError("alias table needs at least one outcome")
        total = 0.0
        for weight in weights:
            if weight < 0 or math.isnan(weight):
                raise ValueError(f"negative or NaN weight: {weight}")
            total += weight
        if total <= 0:
            raise ValueError("at least one weight must be positive")

        size = len(weights)
        scaled = [weight * size / total for weight in weights]
        prob = [0.0] * size
        alias = [0] * size
        small: List[int] = []
        large: List[int] = []
        for index, value in enumerate(scaled):
            (small if value < 1.0 else large).append(index)
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            (small if scaled[hi] < 1.0 else large).append(hi)
        for index in large:
            prob[index] = 1.0
            alias[index] = index
        for index in small:  # numerical leftovers
            prob[index] = 1.0
            alias[index] = index

        self._size = size
        self._prob = prob
        self._alias = alias

    def select(self, uniform: float) -> int:
        """Map one uniform draw in ``[0, 1)`` to an outcome index.

        The draw is split into a column choice and a coin flip, the standard
        trick for using a single uniform with an alias table.
        """
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform draw must be in [0, 1), got {uniform}")
        scaled = uniform * self._size
        column = int(scaled)
        if column >= self._size:  # guard against float rounding at 1.0
            column = self._size - 1
        fraction = scaled - column
        if fraction < self._prob[column]:
            return column
        return self._alias[column]

    def __len__(self) -> int:
        return self._size

    def probabilities(self) -> List[float]:
        """Reconstruct the outcome probabilities encoded by the table.

        Exact up to float rounding; used by tests to verify the build.
        """
        result = [0.0] * self._size
        share = 1.0 / self._size
        for column in range(self._size):
            result[column] += self._prob[column] * share
            result[self._alias[column]] += (1.0 - self._prob[column]) * share
        return result


class CumulativeTable:
    """Binary-searchable cumulative distribution (O(log n) per draw).

    A simpler, allocation-light alternative to :class:`AliasTable`; used
    where the distribution is built once and queried rarely, and in tests as
    an oracle for the alias table.
    """

    __slots__ = ("_cumulative",)

    def __init__(self, weights: Sequence[float]) -> None:
        if len(weights) == 0:
            raise ValueError("cumulative table needs at least one outcome")
        running = 0.0
        cumulative: List[float] = []
        for weight in weights:
            if weight < 0 or math.isnan(weight):
                raise ValueError(f"negative or NaN weight: {weight}")
            running += weight
            cumulative.append(running)
        if running <= 0:
            raise ValueError("at least one weight must be positive")
        self._cumulative = [value / running for value in cumulative]

    def select(self, uniform: float) -> int:
        """Map one uniform draw in ``[0, 1)`` to an outcome index."""
        if not 0.0 <= uniform < 1.0:
            raise ValueError(f"uniform draw must be in [0, 1), got {uniform}")
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if uniform < self._cumulative[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def boundaries(self) -> List[float]:
        """The normalised cumulative boundaries (ascending, ends at 1.0).

        Exposed so vectorized consumers can run :meth:`select` as a batch
        ``searchsorted`` over *exactly* the floats the scalar binary search
        compares against — the bit-identity of the two paths depends on
        sharing these values rather than re-deriving them.
        """
        return list(self._cumulative)

    def __len__(self) -> int:
        return len(self._cumulative)


def build_selector(weights: Sequence[float], prefer_alias: bool = True):
    """Return the most appropriate selector for ``weights``.

    Degenerate single-outcome distributions get a trivial constant selector;
    otherwise an :class:`AliasTable` (or :class:`CumulativeTable` when
    ``prefer_alias`` is false).
    """
    positive = [index for index, weight in enumerate(weights) if weight > 0]
    if len(positive) == 1:
        only = positive[0]

        class _Constant:
            def select(self, uniform: float) -> int:
                return only

            def __len__(self) -> int:
                return len(weights)

        return _Constant()
    if prefer_alias:
        return AliasTable(weights)
    return CumulativeTable(weights)


def select_pair(uniform: float) -> Tuple[float, float]:
    """Split one uniform draw into two (lower-precision) uniforms.

    Occasionally useful to avoid a second hash; exposed for completeness and
    tested for marginal uniformity.
    """
    if not 0.0 <= uniform < 1.0:
        raise ValueError(f"uniform draw must be in [0, 1), got {uniform}")
    scaled = uniform * (1 << 26)
    first = int(scaled)
    return first / float(1 << 26), scaled - first
