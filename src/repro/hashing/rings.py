"""Hash-ring data structure used by consistent hashing and the Share strategy.

A :class:`HashRing` stores named points on the unit circle ``[0, 1)`` and
answers successor queries ("which point follows position x clockwise?") in
``O(log P)`` via binary search.  Points are placed deterministically from the
owner's name and a replica index, so the ring is identical across processes
and is stable under insertion/removal of other owners — the property that
makes consistent hashing 1-competitive for adaptivity.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from .primitives import unit_interval


class HashRing:
    """A unit-circle ring of labelled points with successor lookup."""

    def __init__(self, namespace: str = "ring") -> None:
        self._namespace = namespace
        self._positions: List[float] = []
        self._labels: List[str] = []
        self._points_per_owner: Dict[str, int] = {}
        self._dirty = False
        self._pending: List[Tuple[float, str]] = []

    @staticmethod
    def point_position(namespace: str, owner: str, replica: int) -> float:
        """Deterministic position of the ``replica``-th point of ``owner``."""
        return unit_interval(namespace, owner, replica)

    def add_owner(self, owner: str, points: int) -> None:
        """Insert ``points`` virtual points for ``owner``.

        Raises:
            ValueError: if the owner is already on the ring or ``points < 1``.
        """
        if owner in self._points_per_owner:
            raise ValueError(f"owner {owner!r} already on the ring")
        if points < 1:
            raise ValueError("an owner needs at least one point")
        self._points_per_owner[owner] = points
        for replica in range(points):
            position = self.point_position(self._namespace, owner, replica)
            self._pending.append((position, owner))
        self._dirty = True

    def remove_owner(self, owner: str) -> None:
        """Remove all points belonging to ``owner``.

        Raises:
            KeyError: if the owner is not on the ring.
        """
        points = self._points_per_owner.pop(owner)
        self._flush()
        keep_positions: List[float] = []
        keep_labels: List[str] = []
        removed = 0
        for position, label in zip(self._positions, self._labels):
            if label == owner:
                removed += 1
            else:
                keep_positions.append(position)
                keep_labels.append(label)
        assert removed == points, "ring bookkeeping out of sync"
        self._positions = keep_positions
        self._labels = keep_labels

    def _flush(self) -> None:
        """Merge pending insertions into the sorted arrays."""
        if not self._dirty:
            return
        merged = list(zip(self._positions, self._labels)) + self._pending
        merged.sort()
        self._positions = [position for position, _ in merged]
        self._labels = [label for _, label in merged]
        self._pending = []
        self._dirty = False

    def successor(self, position: float) -> str:
        """Owner of the first point at or after ``position`` (wrapping).

        Raises:
            LookupError: if the ring is empty.
        """
        self._flush()
        if not self._positions:
            raise LookupError("ring is empty")
        index = bisect.bisect_left(self._positions, position)
        if index == len(self._positions):
            index = 0
        return self._labels[index]

    def successors(self, position: float, count: int) -> List[str]:
        """First ``count`` *distinct* owners clockwise from ``position``.

        Used for replica chains in classic consistent-hashing replication.

        Raises:
            LookupError: if the ring is empty.
            ValueError: if fewer distinct owners exist than requested.
        """
        self._flush()
        if not self._positions:
            raise LookupError("ring is empty")
        if count > len(self._points_per_owner):
            raise ValueError(
                f"requested {count} distinct owners, ring has "
                f"{len(self._points_per_owner)}"
            )
        result: List[str] = []
        seen = set()
        start = bisect.bisect_left(self._positions, position)
        total = len(self._positions)
        for offset in range(total):
            label = self._labels[(start + offset) % total]
            if label not in seen:
                seen.add(label)
                result.append(label)
                if len(result) == count:
                    break
        return result

    def owners_covering(self, position: float) -> List[str]:
        """All owners, ordered clockwise by their first point after ``position``.

        Helper for strategies (like Share) that need the full clockwise owner
        order rather than a single successor.
        """
        return self.successors(position, len(self._points_per_owner))

    @property
    def owners(self) -> Iterable[str]:
        """The set of owners currently on the ring."""
        return self._points_per_owner.keys()

    def points_of(self, owner: str) -> int:
        """Number of virtual points ``owner`` has on the ring."""
        return self._points_per_owner[owner]

    def __len__(self) -> int:
        self._flush()
        return len(self._positions)

    def __contains__(self, owner: str) -> bool:
        return owner in self._points_per_owner

    def arc_length(self, owner: Optional[str] = None) -> float:
        """Total clockwise arc owned by ``owner`` (or a dict for all owners).

        The arc of a point extends from the previous point (exclusive) to the
        point itself (inclusive); an owner's arc is the sum over its points.
        This is exactly the probability that a uniform position maps to the
        owner, and is used in tests to bound fairness deviations.
        """
        self._flush()
        if not self._positions:
            raise LookupError("ring is empty")
        totals: Dict[str, float] = {name: 0.0 for name in self._points_per_owner}
        previous = self._positions[-1] - 1.0
        for position, label in zip(self._positions, self._labels):
            totals[label] += position - previous
            previous = position
        if owner is None:
            return totals  # type: ignore[return-value]
        return totals[owner]
