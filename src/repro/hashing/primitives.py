"""Deterministic, process-stable hashing primitives.

All randomness in this library is *derived* rather than sampled: a placement
strategy asked where ball ``a`` lives computes hash values from the ball
address, the bin names and small integer salts.  This gives the three
properties the paper relies on:

* **Determinism** — the same question always gets the same answer, across
  processes and Python versions (unlike the built-in ``hash``, which is
  randomized per process for strings).
* **Independence** — distinct salts give (practically) independent values,
  which is how the O(k) variant of Section 3.3 realises its "O(k*n) hash
  functions".
* **Stability under change** — the hash for round ``i`` of LinMirror is keyed
  on the *name* of the bin at rank ``i``, so inserting an unrelated bin does
  not re-roll existing decisions; this is what bounds the adaptivity.

The mixer is the 64-bit finalizer of SplitMix64 / MurmurHash3, a well-studied
bijective avalanche function.  Strings are folded in via FNV-1a before
mixing.  Everything is pure Python, needs no dependencies, and is fast enough
for the simulation scales used in the paper's evaluation (millions of balls).

For *batch* placement the same pipeline is additionally exposed in array
form (:func:`splitmix64_array`, :func:`u64s_from_base`,
:func:`units_from_base`): with NumPy installed these evaluate whole address
vectors per call, bit-for-bit identical to the scalar functions; without
NumPy they fall back to the scalar loop and return plain lists.
"""

from __future__ import annotations

from typing import Sequence, Union

from .._compat import get_numpy

_MASK64 = (1 << 64) - 1

#: 2**-64, used to map 64-bit integers onto [0, 1).
_INV_2_64 = 1.0 / float(1 << 64)

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

HashablePart = Union[int, str, bytes]


def splitmix64(value: int) -> int:
    """Apply the SplitMix64 finalizer to a 64-bit integer.

    This is a bijection on 64-bit integers with full avalanche: flipping any
    input bit flips each output bit with probability ~1/2.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _fold_part(state: int, part: HashablePart) -> int:
    """Fold one part into the running FNV-1a state."""
    if isinstance(part, int):
        # Mix the integer through splitmix64 first so that small consecutive
        # integers (the common case: block addresses) are well spread before
        # being folded byte-wise.
        mixed = splitmix64(part & _MASK64)
        data = mixed.to_bytes(8, "little")
    elif isinstance(part, str):
        data = part.encode("utf-8")
    elif isinstance(part, bytes):
        data = part
    else:  # pragma: no cover - defensive, the annotation forbids this
        raise TypeError(f"unhashable part type: {type(part).__name__}")
    for byte in data:
        state = ((state ^ byte) * _FNV_PRIME) & _MASK64
    # Separate parts so that ("ab", "c") != ("a", "bc").
    state = ((state ^ 0xFF) * _FNV_PRIME) & _MASK64
    return state


def stable_u64(*parts: HashablePart) -> int:
    """Hash arbitrary parts (ints, strs, bytes) to a uniform 64-bit integer.

    The result depends on the values *and* the part boundaries, and is stable
    across processes and platforms.
    """
    state = _FNV_OFFSET
    for part in parts:
        state = _fold_part(state, part)
    return splitmix64(state)


def unit_interval(*parts: HashablePart) -> float:
    """Hash arbitrary parts to a float uniformly distributed in ``[0, 1)``."""
    return stable_u64(*parts) * _INV_2_64


def unit_interval_open(*parts: HashablePart) -> float:
    """Hash to a float in the *open* interval ``(0, 1)``.

    Useful where a subsequent ``log`` or division forbids exact zero (e.g.
    rendezvous hashing scores).
    """
    value = stable_u64(*parts)
    # Map 0 to the smallest representable step instead.
    return (value | 1) * _INV_2_64


def derive_base(*parts: HashablePart) -> int:
    """Precompute a 64-bit salt base for a fixed key prefix.

    Placement hot loops draw ``hash(namespace, bin, ..., address)`` per
    ball; folding the string prefix every time dominates the cost.  Derive
    the prefix once with this function and combine it with the per-ball
    integers via :func:`unit_from_base` — same independence, integer-only
    work per draw.
    """
    return stable_u64(*parts)


def u64_from_base(base: int, *values: int) -> int:
    """Combine a precomputed base with per-draw integers to a fresh u64."""
    state = base
    for value in values:
        state = splitmix64(state ^ splitmix64(value & _MASK64))
    return splitmix64(state)


def unit_from_base(base: int, *values: int) -> float:
    """Like :func:`unit_interval`, from a precomputed base (see
    :func:`derive_base`)."""
    return u64_from_base(base, *values) * _INV_2_64


def unit_from_base_open(base: int, *values: int) -> float:
    """Like :func:`unit_interval_open`, from a precomputed base."""
    return (u64_from_base(base, *values) | 1) * _INV_2_64


def hash_sequence(seed: int, count: int) -> list:
    """Return ``count`` independent 64-bit values derived from ``seed``.

    Equivalent to ``[stable_u64(seed, i) for i in range(count)]`` but cheaper,
    using the SplitMix64 stream construction.
    """
    values = []
    state = splitmix64(seed & _MASK64)
    for _ in range(count):
        state = (state + 0x9E3779B97F4A7C15) & _MASK64
        values.append(splitmix64(state))
    return values


# ----------------------------------------------------------------------
# Vectorized pipeline (NumPy fast path, scalar fallback)
# ----------------------------------------------------------------------

#: SplitMix64 stream increment and finalizer multipliers, named so the
#: scalar and array implementations visibly share the same constants.
_SM64_GOLDEN = 0x9E3779B97F4A7C15
_SM64_MULT1 = 0xBF58476D1CE4E5B9
_SM64_MULT2 = 0x94D049BB133111EB


def as_u64_array(values: Sequence[int]):
    """Coerce an address sequence to a ``uint64`` NumPy array (mod 2^64).

    Accepts any integer sequence or array; negative values wrap exactly
    like the scalar functions' ``& _MASK64``.  Returns None when NumPy is
    unavailable — callers then take their scalar fallback.
    """
    np = get_numpy()
    if np is None:
        return None
    arr = np.asarray(values)
    if arr.dtype == np.uint64:
        return arr
    if np.issubdtype(arr.dtype, np.integer):
        return arr.astype(np.int64, copy=False).view(np.uint64)
    # Object/oversized ints: mask in Python, then convert exactly.
    return np.fromiter(
        (int(value) & _MASK64 for value in values),
        dtype=np.uint64,
        count=len(values),
    )


def splitmix64_array(values: Sequence[int]):
    """Vectorized :func:`splitmix64` over a sequence of integers.

    With NumPy installed, returns a ``uint64`` array; otherwise a list of
    Python ints.  Either way the elements equal
    ``[splitmix64(v & 2**64-1) for v in values]`` exactly.
    """
    np = get_numpy()
    if np is None:
        return [splitmix64(value & _MASK64) for value in values]
    value = as_u64_array(values) + np.uint64(_SM64_GOLDEN)
    value = (value ^ (value >> np.uint64(30))) * np.uint64(_SM64_MULT1)
    value = (value ^ (value >> np.uint64(27))) * np.uint64(_SM64_MULT2)
    return value ^ (value >> np.uint64(31))


def u64s_from_base(base: int, values: Sequence[int]):
    """Vectorized :func:`u64_from_base` for one per-draw integer each.

    Equals ``[u64_from_base(base, v) for v in values]`` element-wise; a
    ``uint64`` array with NumPy, a list of ints without.
    """
    np = get_numpy()
    if np is None:
        return [u64_from_base(base, value) for value in values]
    mixed = splitmix64_array(values)
    return splitmix64_array(splitmix64_array(np.uint64(base & _MASK64) ^ mixed))


def units_from_base(base: int, values: Sequence[int]):
    """Vectorized :func:`unit_from_base`: one ``[0, 1)`` draw per value.

    Bit-for-bit identical to ``[unit_from_base(base, v) for v in values]``
    (the uint64 → float64 conversion rounds the same way in both paths); a
    ``float64`` array with NumPy, a list of floats without.
    """
    np = get_numpy()
    if np is None:
        return [unit_from_base(base, value) for value in values]
    return u64s_from_base(base, values).astype(np.float64) * _INV_2_64


class HashStream:
    """An unbounded stream of independent hash draws for one key.

    ``Sieve`` and the trivial replication strategy need "the t-th draw for
    ball a"; this class packages the salt bookkeeping::

        stream = HashStream("sieve", address)
        first = stream.next_unit()
        second = stream.next_unit()
    """

    def __init__(self, *parts: HashablePart) -> None:
        self._base = stable_u64(*parts)
        self._index = 0

    def next_u64(self) -> int:
        """Return the next 64-bit draw."""
        value = stable_u64(self._base, self._index)
        self._index += 1
        return value

    def next_unit(self) -> float:
        """Return the next draw mapped to ``[0, 1)``."""
        return self.next_u64() * _INV_2_64

    @property
    def draws_made(self) -> int:
        """Number of draws taken from the stream so far."""
        return self._index
