"""Deterministic hashing substrate.

Everything random in this library is derived from the stable hash functions
in :mod:`repro.hashing.primitives`; :mod:`repro.hashing.rings` and
:mod:`repro.hashing.alias` build the two lookup structures (hash rings,
alias tables) the placement strategies are made of.
"""

from .alias import AliasTable, CumulativeTable, build_selector
from .primitives import (
    HashStream,
    as_u64_array,
    hash_sequence,
    splitmix64,
    splitmix64_array,
    stable_u64,
    u64s_from_base,
    unit_interval,
    unit_interval_open,
    units_from_base,
)
from .rings import HashRing
from .universal import CarterWegmanHash, TabulationHash

__all__ = [
    "AliasTable",
    "CarterWegmanHash",
    "CumulativeTable",
    "HashRing",
    "HashStream",
    "TabulationHash",
    "as_u64_array",
    "build_selector",
    "hash_sequence",
    "splitmix64",
    "splitmix64_array",
    "stable_u64",
    "u64s_from_base",
    "unit_interval",
    "unit_interval_open",
    "units_from_base",
]
