"""Deterministic hashing substrate.

Everything random in this library is derived from the stable hash functions
in :mod:`repro.hashing.primitives`; :mod:`repro.hashing.rings` and
:mod:`repro.hashing.alias` build the two lookup structures (hash rings,
alias tables) the placement strategies are made of.
"""

from .alias import AliasTable, CumulativeTable, build_selector
from .primitives import (
    HashStream,
    hash_sequence,
    splitmix64,
    stable_u64,
    unit_interval,
    unit_interval_open,
)
from .rings import HashRing
from .universal import CarterWegmanHash, TabulationHash

__all__ = [
    "AliasTable",
    "CarterWegmanHash",
    "CumulativeTable",
    "HashRing",
    "HashStream",
    "TabulationHash",
    "build_selector",
    "hash_sequence",
    "splitmix64",
    "stable_u64",
    "unit_interval",
    "unit_interval_open",
]
