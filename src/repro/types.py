"""Shared value types used across the placement, cluster and metric layers.

The central abstraction is the *bin* (the paper's term for a storage device):
an identifier plus a capacity measured in blocks.  Placement strategies are
constructed from an immutable sequence of :class:`BinSpec` and map *ball*
addresses (block numbers) to bins.

A :class:`Placement` is the ordered result of placing one ball: position
``0`` is the primary copy, position ``1`` the secondary, and so on.  The
order is meaningful — the paper requires strategies to "clearly identify the
i-th of k copies" so that erasure-coded sub-blocks (which are not
interchangeable) can be layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: A ball identifier (virtual block address).  Any non-negative integer.
Address = int

#: An ordered tuple of bin ids; index i holds the i-th copy of the ball.
Placement = Tuple[str, ...]


@dataclass(frozen=True)
class BinSpec:
    """A storage device ("bin") participating in placement.

    Attributes:
        bin_id: Unique, stable name of the device.  The randomness used by
            the placement strategies is keyed on this name, which is what
            makes placements stable when *other* devices enter or leave.
        capacity: Number of block copies the device can store (``b_i`` in
            the paper).  Must be positive.
    """

    bin_id: str
    capacity: int

    def __post_init__(self) -> None:
        if not self.bin_id:
            raise ValueError("bin_id must be a non-empty string")
        if self.capacity <= 0:
            raise ValueError(
                f"capacity of bin {self.bin_id!r} must be positive, got {self.capacity}"
            )


def validate_bins(bins: Sequence[BinSpec]) -> None:
    """Check that a bin sequence is usable by a placement strategy.

    Raises:
        ValueError: if ``bins`` is empty or contains duplicate ids.
    """
    if not bins:
        raise ValueError("at least one bin is required")
    seen = set()
    for spec in bins:
        if spec.bin_id in seen:
            raise ValueError(f"duplicate bin id {spec.bin_id!r}")
        seen.add(spec.bin_id)


def sort_bins_by_capacity(bins: Iterable[BinSpec]) -> List[BinSpec]:
    """Return bins sorted by descending capacity.

    Ties are broken by bin id so the order — and therefore every placement
    decision derived from it — is deterministic.
    """
    return sorted(bins, key=lambda spec: (-spec.capacity, spec.bin_id))


def total_capacity(bins: Iterable[BinSpec]) -> int:
    """Sum of the capacities of ``bins`` (``B`` in the paper)."""
    return sum(spec.capacity for spec in bins)


def relative_capacities(bins: Sequence[BinSpec]) -> Dict[str, float]:
    """Map each bin id to its relative capacity ``c_i = b_i / B``."""
    total = total_capacity(bins)
    return {spec.bin_id: spec.capacity / total for spec in bins}


def bins_from_capacities(
    capacities: Sequence[int], prefix: str = "bin"
) -> List[BinSpec]:
    """Convenience constructor: build bins named ``{prefix}-{index}``.

    Useful in tests, examples and benchmarks where only the capacity vector
    matters.
    """
    return [
        BinSpec(bin_id=f"{prefix}-{index}", capacity=capacity)
        for index, capacity in enumerate(capacities)
    ]
