"""Scenario builders, experiment runners and the event engine."""

from .engine import Simulator
from .traceplayer import DeviceLoad, PlaybackReport, TracePlayer
from .runner import (
    AdaptivityResult,
    FairnessResult,
    run_adaptivity,
    run_fairness,
)
from .scenarios import (
    AddRemoveCase,
    GrowthStep,
    add_remove_cases,
    capacity_change_cases,
    heterogeneous_bins,
    homogeneous_bins,
    paper_growth_steps,
    scaling_cases,
)

__all__ = [
    "AdaptivityResult",
    "AddRemoveCase",
    "DeviceLoad",
    "FairnessResult",
    "GrowthStep",
    "PlaybackReport",
    "Simulator",
    "TracePlayer",
    "add_remove_cases",
    "capacity_change_cases",
    "heterogeneous_bins",
    "homogeneous_bins",
    "paper_growth_steps",
    "run_adaptivity",
    "run_fairness",
    "scaling_cases",
]
