"""The paper's evaluation scenarios as reusable configuration builders.

Section 3.1: "We started the tests with 8 heterogeneous bins.  The first
has a capacity of 500,000 blocks, for the other bins the size is increased
by 100,000 blocks with each bin, so the last bin has a capacity of
1,200,000 blocks.  [...] we added two times two bins.  The new bins are
growing by the same factor as the first did.  Then we removed two times
the two smallest bins."

:func:`paper_growth_steps` reproduces that sequence (Figures 2 and 4);
:func:`add_remove_cases` builds the eight Figure 3 cases; the sweep helpers
drive Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..types import BinSpec

#: Default capacity scale.  The paper uses blocks of 500,000..; the bench
#: uses the same *ratios* at a laptop-friendly scale by default and can be
#: dialled up to the paper's absolute numbers.
PAPER_BASE = 500_000
PAPER_STEP = 100_000


def heterogeneous_bins(
    count: int, base: int = PAPER_BASE, step: int = PAPER_STEP, start_index: int = 0
) -> List[BinSpec]:
    """``count`` bins with capacities ``base, base+step, ...``.

    ``start_index`` offsets the naming so that growth steps extend rather
    than rename the population (names are what placement stability keys on).
    """
    return [
        BinSpec(f"disk-{start_index + i:02d}", base + (start_index + i) * step)
        for i in range(count)
    ]


def homogeneous_bins(count: int, capacity: int = PAPER_BASE) -> List[BinSpec]:
    """``count`` equal bins."""
    return [BinSpec(f"disk-{i:02d}", capacity) for i in range(count)]


@dataclass(frozen=True)
class GrowthStep:
    """One configuration of the Figure 2/4 growth experiment.

    Attributes:
        label: The paper's series label, e.g. ``"10 Disks"``.
        bins: The configuration.
    """

    label: str
    bins: Tuple[BinSpec, ...]


def paper_growth_steps(
    base: int = PAPER_BASE, step: int = PAPER_STEP
) -> List[GrowthStep]:
    """The 8 -> 10 -> 12 -> 10 -> 8 disk sequence of Figures 2 and 4."""
    eight = heterogeneous_bins(8, base, step)
    ten = eight + heterogeneous_bins(2, base, step, start_index=8)
    twelve = ten + heterogeneous_bins(2, base, step, start_index=10)
    # Remove the two smallest (disk-00, disk-01), then the next two.
    ten_shrunk = twelve[2:]
    eight_shrunk = twelve[4:]
    return [
        GrowthStep("8 Disks", tuple(eight)),
        GrowthStep("10 Disks", tuple(ten)),
        GrowthStep("12 Disks", tuple(twelve)),
        GrowthStep("10 Disks (shrunk)", tuple(ten_shrunk)),
        GrowthStep("8 Disks (shrunk)", tuple(eight_shrunk)),
    ]


@dataclass(frozen=True)
class AddRemoveCase:
    """One Figure 3 adaptivity case.

    Attributes:
        label: e.g. ``"het. add big"``.
        before: Configuration before the change.
        after: Configuration after the change.
        affected: The bin id added or removed.
    """

    label: str
    before: Tuple[BinSpec, ...]
    after: Tuple[BinSpec, ...]
    affected: str


def add_remove_cases(
    count: int = 8, base: int = PAPER_BASE, step: int = PAPER_STEP
) -> List[AddRemoveCase]:
    """The eight Figure 3 cases: {het, hom} x {add, remove} x {big, small}."""
    cases: List[AddRemoveCase] = []
    for flavor in ("het", "hom"):
        if flavor == "het":
            # Heterogeneous: position in the capacity order is driven by a
            # strictly larger/smaller capacity (the paper grows its new
            # bins "by the same factor as the first did").
            bins = heterogeneous_bins(count, base, step)
            big = BinSpec("new-big", bins[-1].capacity + step)
            small = BinSpec("new-small", max(1, bins[0].capacity - step))
        else:
            # Homogeneous: the added bin has the same capacity; whether it
            # lands at the beginning or the end of the ordered list is
            # decided by the deterministic id tie-break.
            bins = homogeneous_bins(count, base)
            big = BinSpec("aa-new-big", base)  # ties sort by id: first
            small = BinSpec("zz-new-small", base)  # ties sort by id: last
        cases.append(
            AddRemoveCase(
                f"{flavor}. add big", tuple(bins), tuple(bins) + (big,), big.bin_id
            )
        )
        cases.append(
            AddRemoveCase(
                f"{flavor}. add small",
                tuple(bins),
                tuple(bins) + (small,),
                small.bin_id,
            )
        )
        # "Biggest"/"smallest" refer to the position in the strategy's scan
        # order (descending capacity, ties by id) — the paper's "beginning
        # and end of the list".
        big_existing = min(bins, key=lambda spec: (-spec.capacity, spec.bin_id))
        small_existing = max(bins, key=lambda spec: (-spec.capacity, spec.bin_id))
        cases.append(
            AddRemoveCase(
                f"{flavor}. rem. big",
                tuple(bins),
                tuple(spec for spec in bins if spec.bin_id != big_existing.bin_id),
                big_existing.bin_id,
            )
        )
        cases.append(
            AddRemoveCase(
                f"{flavor}. rem. small",
                tuple(bins),
                tuple(
                    spec for spec in bins if spec.bin_id != small_existing.bin_id
                ),
                small_existing.bin_id,
            )
        )
    return cases


def capacity_change_cases(
    count: int = 8,
    base: int = PAPER_BASE,
    step: int = PAPER_STEP,
    growth: float = 0.5,
) -> List[AddRemoveCase]:
    """Adaptivity under *capacity* changes (no device enters or leaves).

    The paper's adaptivity criterion covers "any change in the set of data
    blocks, storage devices, **or their capacities**"; these cases grow one
    existing device — the biggest or the smallest — by ``growth`` of its
    size and treat it as the affected bin.
    """
    bins = heterogeneous_bins(count, base, step)
    cases: List[AddRemoveCase] = []
    for label, index in (("grow biggest", count - 1), ("grow smallest", 0)):
        target = bins[index]
        resized = BinSpec(target.bin_id, int(target.capacity * (1 + growth)))
        after = tuple(
            resized if spec.bin_id == target.bin_id else spec for spec in bins
        )
        cases.append(
            AddRemoveCase(label, tuple(bins), after, target.bin_id)
        )
    return cases


def scaling_cases(
    sizes: Sequence[int], capacity: int = PAPER_BASE
) -> List[AddRemoveCase]:
    """Figure 5: homogeneous systems of n bins, adding one bin as the
    biggest or as the smallest, for each n in ``sizes``."""
    cases: List[AddRemoveCase] = []
    for n in sizes:
        bins = homogeneous_bins(n, capacity)
        # "Biggest": sorts to rank 0 (strictly larger capacity).
        big = BinSpec("zz-new", capacity + 1)
        # "Smallest": sorts to the last rank (strictly smaller capacity).
        small = BinSpec("aa-new", capacity - 1)
        cases.append(
            AddRemoveCase(
                f"n={n} add biggest",
                tuple(bins),
                tuple(bins) + (big,),
                big.bin_id,
            )
        )
        cases.append(
            AddRemoveCase(
                f"n={n} add smallest",
                tuple(bins),
                tuple(bins) + (small,),
                small.bin_id,
            )
        )
    return cases
