"""A minimal discrete-event simulation engine.

The placement experiments are time-free, but the failure-recovery example
wants realistic interleavings (failures arriving while rebuilds run).  This
engine is deliberately tiny: a priority queue of timestamped callbacks with
deterministic tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple

from .. import obs

Action = Callable[[], None]


class Simulator:
    """Event-driven clock with schedule/run semantics."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Action]] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(self, delay: float, action: Action) -> None:
        """Run ``action`` ``delay`` time units from now.

        Raises:
            ValueError: for negative delays.
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), action)
        )

    def schedule_at(self, time: float, action: Action) -> None:
        """Run ``action`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (time, next(self._counter), action))

    def schedule_many(self, events: Iterable[Tuple[float, Action]]) -> int:
        """Bulk-schedule ``(delay, action)`` pairs; returns the count.

        Appends the whole batch and re-heapifies once — O(queue + batch)
        instead of O(batch · log queue) — which is what makes loading a
        million-event trace into the simulator cheap.  Ordering semantics
        are identical to calling :meth:`schedule` per pair.

        Raises:
            ValueError: for negative delays (the queue is left unchanged).
        """
        base = self._now
        staged: List[Tuple[float, int, Action]] = []
        for delay, action in events:
            if delay < 0:
                raise ValueError("cannot schedule into the past")
            staged.append((base + delay, next(self._counter), action))
        if staged:
            self._queue.extend(staged)
            heapq.heapify(self._queue)
        return len(staged)

    def step(self) -> bool:
        """Execute the next event; False if the queue is empty."""
        if not self._queue:
            return False
        if obs.sink().enabled:
            # Queue depth *including* the event about to run — the
            # per-tick backlog the heavy-traffic benches watch.
            registry = obs.metrics()
            registry.histogram("sim.queue_depth").observe(len(self._queue))
            registry.counter("sim.events").add(1)
        time, _, action = heapq.heappop(self._queue)
        self._now = time
        action()
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue empties or ``until`` is reached."""
        processed_before = self._processed
        while self._queue:
            time = self._queue[0][0]
            if until is not None and time > until:
                break
            self.step()
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self._now = max(self._now, until)
        sink = obs.sink()
        if sink.enabled:
            sink.emit(
                "sim.run",
                processed=self._processed - processed_before,
                now=self._now,
                pending=len(self._queue),
            )

    def pending(self) -> int:
        """Number of scheduled events not yet run."""
        return len(self._queue)
