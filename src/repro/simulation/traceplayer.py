"""Trace player: drive a cluster with a request trace and measure load.

The paper's fairness definition covers "the data and the requests": a
device with x% of the capacity should also see x% of the I/O.  The trace
player replays a :mod:`repro.workloads` trace against a cluster, routes
each read through a pluggable :mod:`repro.scheduling` policy (per-block
round-robin by default), and models per-device service with a simple
deterministic queue:

    busy_until = max(busy_until, arrival) + service_time

which yields per-device utilisation and mean response times — enough to
see imbalance turn into latency, without a full storage-stack model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..exceptions import ConfigurationError, DeviceUnavailableError
from ..scheduling import registry as sched_registry
from ..scheduling.cache import LruCacheModel
from ..workloads.traces import Op, Request
from ..cluster.cluster import Cluster


@dataclass
class DeviceLoad:
    """Per-device accounting.

    Attributes:
        operations: Share operations served.
        bytes_moved: Payload bytes read or written.
        busy_time: Total service time accumulated.
        response_total: Sum of response times (queueing + service).
    """

    operations: int = 0
    bytes_moved: int = 0
    busy_time: float = 0.0
    response_total: float = 0.0
    _busy_until: float = 0.0

    def serve(self, arrival: float, service: float, size: int) -> float:
        """Serve one operation; returns its response time."""
        start = max(self._busy_until, arrival)
        finish = start + service
        self._busy_until = finish
        self.operations += 1
        self.bytes_moved += size
        self.busy_time += service
        self.response_total += finish - arrival
        return finish - arrival

    @property
    def mean_response(self) -> float:
        """Mean response time over served operations."""
        if self.operations == 0:
            return 0.0
        return self.response_total / self.operations


@dataclass
class PlaybackReport:
    """Outcome of replaying a trace.

    Attributes:
        requests: Client requests replayed.
        reads: Read requests.
        writes: Write requests.
        device_loads: Per-device accounting.
        duration: Arrival span of the trace (arrival rate is 1 request per
            time unit by construction).
    """

    requests: int = 0
    reads: int = 0
    writes: int = 0
    device_loads: Dict[str, DeviceLoad] = field(default_factory=dict)
    duration: float = 0.0

    def operation_shares(self) -> Dict[str, float]:
        """Fraction of share operations served per device."""
        total = sum(load.operations for load in self.device_loads.values())
        if total == 0:
            return {device: 0.0 for device in self.device_loads}
        return {
            device: load.operations / total
            for device, load in self.device_loads.items()
        }

    def utilisations(self) -> Dict[str, float]:
        """busy_time / duration per device."""
        if self.duration <= 0:
            return {device: 0.0 for device in self.device_loads}
        return {
            device: load.busy_time / self.duration
            for device, load in self.device_loads.items()
        }


class TracePlayer:
    """Replays request traces against a cluster with a service-time model."""

    def __init__(
        self,
        cluster: Cluster,
        service_time: float = 1.0,
        arrival_interval: float = 1.0,
        read_policy: str = "rotate",
        *,
        seed: int = 0,
        cache: Optional[LruCacheModel] = None,
    ) -> None:
        """Build the player.

        Args:
            cluster: The cluster to drive.
            service_time: Time one share operation occupies its device.
            arrival_interval: Time between consecutive client requests.
            read_policy: Any online policy registered in
                :mod:`repro.scheduling.registry` — ``"rotate"`` (the
                round-robin alias, default), ``"primary"``, ``"random"``,
                ``"least-loaded"``, ``"power-of-two"``, ...
            seed: Determinism seed for the scheduler's hash draws.
            cache: Optional per-device LRU cache model the scheduler
                consults for service costs.

        Raises:
            ConfigurationError: for an unknown policy name, or an
                offline baseline (water-filling) that cannot schedule
                per-request.
        """
        entry = sched_registry.lookup(read_policy)
        if not entry.online:
            raise ConfigurationError(
                f"read_policy {entry.name!r} is an offline baseline; "
                f"the trace player schedules per-request"
            )
        if service_time <= 0 or arrival_interval <= 0:
            raise ValueError("service_time and arrival_interval must be > 0")
        self._cluster = cluster
        self._service = service_time
        self._interval = arrival_interval
        self._read_policy = entry.name
        self._scheduler = entry.build(
            cluster.device_ids(), seed=seed, cache=cache
        )

    @property
    def scheduler(self):
        """The live read scheduler (per-device load counters and all)."""
        return self._scheduler

    def _pick_read_copy(self, address: int, placement) -> int:
        scheduler = self._scheduler
        cluster = self._cluster
        for device_id in placement:
            if cluster.device(device_id).is_active:
                scheduler.mark_online(device_id)
            else:
                scheduler.mark_offline(device_id)
        try:
            return scheduler.choose(address, placement)
        except DeviceUnavailableError:
            # Every copy is down; keep the old behaviour of charging the
            # primary copy rather than failing the replay.
            return 0

    def play(self, trace: Iterable[Request], payload_size: int = 64) -> PlaybackReport:
        """Replay a trace; unknown blocks are auto-written on first read."""
        report = PlaybackReport()
        cluster = self._cluster
        loads = report.device_loads
        for device_id in cluster.device_ids():
            loads[device_id] = DeviceLoad()

        arrival = 0.0
        for request in trace:
            report.requests += 1
            arrival += self._interval
            address = request.address
            if request.op is Op.WRITE:
                report.writes += 1
                cluster.write(address, request.payload(payload_size))
                placement = cluster.placement_of(address)
                for device_id in placement:
                    loads.setdefault(device_id, DeviceLoad()).serve(
                        arrival, self._service, payload_size
                    )
            else:
                report.reads += 1
                try:
                    placement = cluster.placement_of(address)
                except Exception:
                    cluster.write(address, request.payload(payload_size))
                    placement = cluster.placement_of(address)
                copy = self._pick_read_copy(address, placement)
                device_id = placement[copy]
                device = cluster.device(device_id)
                if not device.is_active:
                    # Fail over to the first live copy.
                    for candidate_position, candidate in enumerate(placement):
                        if cluster.device(candidate).is_active:
                            device_id = candidate
                            break
                loads.setdefault(device_id, DeviceLoad()).serve(
                    arrival, self._service, payload_size
                )
        report.duration = arrival
        return report
