"""Experiment runners: evaluate strategies over scenarios.

These are strategy-level (no payload movement) versions of the cluster
operations — they place a synthetic ball population under each
configuration and measure fairness / movement, which is how the paper's
own simulation environment works and what the benches call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..metrics.adaptivity import MovementReport, compare_strategies
from ..metrics.fairness import count_copies, fill_percentages
from ..placement.base import ReplicationStrategy
from ..types import BinSpec
from .scenarios import AddRemoveCase, GrowthStep

StrategyFactory = Callable[[Sequence[BinSpec]], ReplicationStrategy]


@dataclass(frozen=True)
class FairnessResult:
    """Fairness measurement for one configuration.

    Attributes:
        label: Scenario step label.
        fills: Percent-of-capacity used per bin (Figure 2/4 series).
        copies_per_bin: Raw copy counts.
    """

    label: str
    fills: Dict[str, float]
    copies_per_bin: Dict[str, int]

    @property
    def spread(self) -> float:
        """Max minus min fill percent — 0 is perfectly fair."""
        return max(self.fills.values()) - min(self.fills.values())


def run_fairness(
    steps: Sequence[GrowthStep],
    factory: StrategyFactory,
    balls: int,
    load_factor: float = 0.5,
) -> List[FairnessResult]:
    """Place ``balls`` balls under each step and report fill percentages.

    Args:
        steps: Configurations to evaluate (e.g. ``paper_growth_steps()``).
        factory: Strategy builder.
        balls: Ball population size (the same addresses for every step).
        load_factor: Informational only; callers size ``balls`` so the
            system is at this load (kept for report labelling).
    """
    results: List[FairnessResult] = []
    addresses = range(balls)
    for step in steps:
        strategy = factory(list(step.bins))
        # One vectorized batch per configuration (count_copies consumes the
        # rank columns directly); strategies without a batch engine fall
        # back to the scalar loop inside place_many.
        counts = count_copies(strategy.place_many(addresses))
        capacities = {spec.bin_id: float(spec.capacity) for spec in step.bins}
        # Fairness is judged against *usable* (clipped) capacity where the
        # strategy exposes it; raw capacity otherwise.
        effective = getattr(strategy, "effective_capacities", None)
        if callable(effective):
            capacities = effective()
        fills = fill_percentages(counts, capacities)
        results.append(
            FairnessResult(label=step.label, fills=fills, copies_per_bin=counts)
        )
    return results


@dataclass(frozen=True)
class AdaptivityResult:
    """Movement measurement for one add/remove case.

    Attributes:
        label: Case label (e.g. ``"het. add big"``).
        report: The underlying movement numbers.
    """

    label: str
    report: MovementReport

    @property
    def used(self) -> int:
        """Copies on the affected bin."""
        return self.report.used_on_affected

    @property
    def replaced(self) -> int:
        """Copies that changed device."""
        return self.report.moved_positional

    @property
    def factor(self) -> float:
        """``replaced / used`` — the Figure 3/5 competitive factor."""
        return self.report.factor_positional


def run_adaptivity(
    cases: Sequence[AddRemoveCase],
    factory: StrategyFactory,
    balls: int,
) -> List[AdaptivityResult]:
    """Measure movement for each add/remove case."""
    results: List[AdaptivityResult] = []
    addresses = list(range(balls))
    for case in cases:
        before = factory(list(case.before))
        after = factory(list(case.after))
        report = compare_strategies(before, after, addresses, [case.affected])
        results.append(AdaptivityResult(label=case.label, report=report))
    return results
