"""Durability modelling: what the redundancy property is worth in years.

The paper motivates replication with "if a storage device fails, all of the
blocks stored in it cannot be recovered any more".  This module quantifies
the benefit with the standard Markov-chain MTTDL (mean time to data loss)
model and lets the discrete-event engine cross-check the closed forms by
simulation.

Model (classic, per redundancy group): devices fail independently at rate
``λ = 1/MTTF``; a failed device rebuilds at rate ``μ = 1/MTTR``; data is
lost when more than ``tolerance`` devices of one group are down at once.
For ``μ >> λ`` (always true in practice) the chain gives

    MTTDL(mirror, k=2)    ≈ μ / (2 λ²)
    MTTDL(code n, t)      ≈ μ^t / (binom(n, t+1) (t+1)! λ^{t+1} / n ... )

implemented exactly below as the expected absorption time of the
birth-death chain, not just the asymptotic formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..hashing.primitives import stable_u64
from ..simulation.engine import Simulator


@dataclass(frozen=True)
class DurabilityModel:
    """A redundancy-group durability model.

    Attributes:
        devices: Devices in one redundancy group (``n``: k for mirroring,
            data+parity for an erasure code).
        tolerance: Simultaneous failures survived (``k - 1`` resp. parity
            count).
        mttf: Mean time to failure of one device (any consistent unit).
        mttr: Mean time to repair one device (same unit).
    """

    devices: int
    tolerance: int
    mttf: float
    mttr: float

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if not 0 <= self.tolerance < self.devices:
            raise ValueError("tolerance must be in [0, devices)")
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError("mttf and mttr must be positive")

    @property
    def failure_rate(self) -> float:
        """Per-device failure rate λ."""
        return 1.0 / self.mttf

    @property
    def repair_rate(self) -> float:
        """Per-device repair rate μ."""
        return 1.0 / self.mttr


def mttdl(model: DurabilityModel) -> float:
    """Exact MTTDL of the birth-death failure chain.

    States 0..t track the number of failed devices; state t+1 (loss) is
    absorbing.  From state i: failure rate ``(n - i) λ``, repair rate
    ``i μ`` (parallel repairs).  The expected absorption time from state 0
    solves a linear system with a standard forward recurrence.
    """
    n = model.devices
    t = model.tolerance
    lam = model.failure_rate
    mu = model.repair_rate

    # E_i = expected time to absorption from state i, for i = 0..t.
    # E_i = 1/(f_i + r_i) + (f_i * E_{i+1} + r_i * E_{i-1})/(f_i + r_i)
    # with E_{t+1} = 0 and r_0 = 0.  Solve by expressing
    # E_i = a_i + b_i * E_{i+1} via forward elimination.
    a = [0.0] * (t + 1)
    b = [0.0] * (t + 1)
    for i in range(t + 1):
        fail = (n - i) * lam
        repair = i * mu
        total = fail + repair
        if i == 0:
            a[0] = 1.0 / total
            b[0] = fail / total
            continue
        # E_i = 1/total + (fail/total) E_{i+1} + (repair/total) E_{i-1}
        #     = 1/total + (fail/total) E_{i+1}
        #       + (repair/total)(a_{i-1} + b_{i-1} E_i)
        denominator = 1.0 - (repair / total) * b[i - 1]
        a[i] = (1.0 / total + (repair / total) * a[i - 1]) / denominator
        b[i] = (fail / total) / denominator
    # Back-substitute from E_{t+1} = 0.
    expected = 0.0
    for i in range(t, -1, -1):
        expected = a[i] + b[i] * expected
    return expected


def mttdl_mirror(copies: int, mttf: float, mttr: float) -> float:
    """MTTDL of plain k-fold mirroring."""
    return mttdl(DurabilityModel(copies, copies - 1, mttf, mttr))


def observed_model(
    devices: int,
    tolerance: int,
    failures: int,
    horizon: float,
    mean_repair_time: float,
) -> DurabilityModel:
    """Fit a :class:`DurabilityModel` to what a chaos run actually saw.

    Args:
        devices: Devices in the pool during the run.
        tolerance: Simultaneous failures survived (``k - 1`` for mirroring,
            the code's parity count otherwise).
        failures: Permanent device failures observed.
        horizon: Wall-clock length of the observation window (simulation
            time units).
        mean_repair_time: Average time from failure to the last share of
            the device being re-replicated.

    Returns:
        A model whose MTTF is the per-device empirical estimate
        ``devices * horizon / failures`` and whose MTTR is the observed
        mean repair time — feed it to :func:`mttdl` for the durability the
        observed failure/repair rates imply.

    Raises:
        ValueError: with no failures, a non-positive horizon, or a
            non-positive repair time (nothing to fit).
    """
    if failures < 1:
        raise ValueError("need at least one observed failure to fit MTTF")
    if horizon <= 0:
        raise ValueError("observation horizon must be positive")
    if mean_repair_time <= 0:
        raise ValueError("mean repair time must be positive")
    return DurabilityModel(
        devices=devices,
        tolerance=tolerance,
        mttf=devices * horizon / failures,
        mttr=mean_repair_time,
    )


def annual_loss_probability(model: DurabilityModel, year: float = 1.0) -> float:
    """P(data loss within one year), treating loss as ~exponential."""
    return 1.0 - math.exp(-year / mttdl(model))


def simulate_mttdl(
    model: DurabilityModel, runs: int = 200, seed: int = 0
) -> float:
    """Monte-Carlo MTTDL via the discrete-event engine.

    Each run plays exponential failure/repair races on one redundancy
    group until more than ``tolerance`` devices are down, and returns the
    mean loss time.  Used by tests to validate :func:`mttdl` end to end
    (engine + model), not as a substitute for it.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    total_time = 0.0
    for run in range(runs):
        total_time += _single_run(model, seed, run)
    return total_time / runs


def _exponential(rate: float, *key) -> float:
    uniform = (stable_u64("durability", *key) | 1) / float(1 << 64)
    return -math.log(uniform) / rate


def _single_run(model: DurabilityModel, seed: int, run: int) -> float:
    simulator = Simulator()
    failed: List[bool] = [False] * model.devices
    state = {"down": 0, "lost_at": None, "draw": 0}

    def draw(rate: float) -> float:
        state["draw"] += 1
        return _exponential(rate, seed, run, state["draw"])

    def schedule_failure(device: int) -> None:
        simulator.schedule(draw(model.failure_rate), lambda: fail(device))

    def schedule_repair(device: int) -> None:
        simulator.schedule(draw(model.repair_rate), lambda: repair(device))

    def fail(device: int) -> None:
        if state["lost_at"] is not None or failed[device]:
            return
        failed[device] = True
        state["down"] += 1
        if state["down"] > model.tolerance:
            state["lost_at"] = simulator.now
            return
        schedule_repair(device)

    def repair(device: int) -> None:
        if state["lost_at"] is not None or not failed[device]:
            return
        failed[device] = False
        state["down"] -= 1
        schedule_failure(device)

    # Seed all first failures in one bulk heapify (same draw order, same
    # tie-breaking counters as per-device schedule calls).
    simulator.schedule_many(
        (draw(model.failure_rate), lambda device=device: fail(device))
        for device in range(model.devices)
    )
    while state["lost_at"] is None:
        if not simulator.step():  # pragma: no cover - chain always absorbs
            raise AssertionError("simulation ran out of events")
    return state["lost_at"]
