"""Concentration bounds: how close "fair in expectation" is in practice.

The paper's fairness guarantees are *expected-case*; Section 1.1 notes that
capacity efficiency "can be shown in the expected case or with high
probability".  This module supplies the high-probability half: Chernoff
bounds for the binomial copy counts a perfectly fair strategy induces, so
experiments (and users) can tell Monte-Carlo noise from genuine bias.

For a bin with fair share ``p`` receiving ``X ~ Binomial(N, p)`` of the
``N`` placed copies:

    P(|X/N - p| >= eps) <= 2 exp(-N eps^2 / (3 p))      (eps <= p)

(the multiplicative Chernoff bound with delta = eps/p).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping


def deviation_probability(copies: int, share: float, epsilon: float) -> float:
    """Chernoff upper bound on ``P(|X/N - p| >= eps)``.

    Args:
        copies: ``N`` — total copies placed.
        share: ``p`` — the bin's fair share, in (0, 1].
        epsilon: Absolute deviation of the empirical share.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")
    if not 0.0 < share <= 1.0:
        raise ValueError("share must be in (0, 1]")
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    delta = epsilon / share
    # Two-sided multiplicative Chernoff; the upper tail dominates for
    # delta <= 1, and for delta > 1 we use the (valid) upper-tail form
    # exp(-N p delta / 3).
    if delta <= 1.0:
        exponent = copies * share * delta * delta / 3.0
    else:
        exponent = copies * share * delta / 3.0
    return min(1.0, 2.0 * math.exp(-exponent))


def tolerance_for(copies: int, share: float, confidence: float = 0.999) -> float:
    """Deviation ``eps`` not exceeded with the given confidence.

    Inverts :func:`deviation_probability` (small-deviation regime); tests
    compare empirical fairness deviations against this, so a failure means
    *bias*, not bad luck.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    failure = 1.0 - confidence
    epsilon = math.sqrt(3.0 * share * math.log(2.0 / failure) / copies)
    return min(epsilon, share)  # stay in the small-deviation regime


def required_copies(share: float, epsilon: float, confidence: float = 0.999) -> int:
    """Copies needed so the empirical share is within ``eps`` w.h.p.

    The experiment-sizing helper: how many balls must a fairness test
    place before a deviation of ``eps`` is meaningful?
    """
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    failure = 1.0 - confidence
    return math.ceil(3.0 * share * math.log(2.0 / failure) / (epsilon * epsilon))


def fairness_tolerances(
    expected_shares: Mapping[str, float],
    copies: int,
    confidence: float = 0.999,
) -> Dict[str, float]:
    """Per-bin deviation tolerances for one experiment."""
    return {
        bin_id: tolerance_for(copies, share, confidence)
        for bin_id, share in expected_shares.items()
        if share > 0.0
    }
