"""Analytical models: durability (MTTDL), mean-field replication and
concentration bounds."""

from .concentration import (
    deviation_probability,
    fairness_tolerances,
    required_copies,
    tolerance_for,
)
from .durability import (
    DurabilityModel,
    annual_loss_probability,
    mttdl,
    mttdl_mirror,
    observed_model,
    simulate_mttdl,
)
from .mean_field import (
    mean_field_distribution,
    mean_field_step,
    mean_field_trajectory,
    total_variation,
)

__all__ = [
    "DurabilityModel",
    "annual_loss_probability",
    "deviation_probability",
    "fairness_tolerances",
    "mean_field_distribution",
    "mean_field_step",
    "mean_field_trajectory",
    "mttdl",
    "mttdl_mirror",
    "observed_model",
    "required_copies",
    "simulate_mttdl",
    "tolerance_for",
]
