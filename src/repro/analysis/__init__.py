"""Analytical models: durability (MTTDL) and concentration bounds."""

from .concentration import (
    deviation_probability,
    fairness_tolerances,
    required_copies,
    tolerance_for,
)
from .durability import (
    DurabilityModel,
    annual_loss_probability,
    mttdl,
    mttdl_mirror,
    observed_model,
    simulate_mttdl,
)

__all__ = [
    "DurabilityModel",
    "annual_loss_probability",
    "deviation_probability",
    "fairness_tolerances",
    "mttdl",
    "mttdl_mirror",
    "observed_model",
    "required_copies",
    "simulate_mttdl",
    "tolerance_for",
]
