"""Mean-field replication model, discretized to fleet epochs.

Following "Analysis of a Stochastic Model of Replication in Large
Distributed Storage Systems" (Sun et al., PAPERS.md), the state of a
replicated fleet is summarized by the *copy-count distribution*
``x = (x_0, ..., x_k)`` where ``x_c`` is the fraction of blocks with
exactly ``c`` surviving copies.  Class ``0`` (every copy gone) is
absorbing — those blocks are lost for good.

The fleet simulator (:mod:`repro.chaos.fleet`) advances in discrete
epochs: each epoch every device fails independently with probability
``p``, then a rate-limited repair sweep re-replicates the
lowest-redundancy blocks first.  Because a block's copies always sit on
*distinct* devices, the number of copies it loses in one epoch is
exactly ``Binomial(c, p)`` — so the mean-field recursion below is not an
approximation of the per-block dynamics, only of their independence
(placement couples blocks that share a device; at fleet scale the
coupling washes out, which is precisely the mean-field regime the paper
analyses).

One epoch of the recursion:

1. **Failure (binomial thinning).**  Mass moves down:
   ``x'_{c-j} += x_c * C(c, j) p^j (1-p)^{c-j}``.
2. **Priority repair.**  A budget of ``r`` (fraction of the fleet's
   blocks repairable per epoch) moves mass *up one class*, lowest
   classes first: for ``c = 1 .. k-1`` ascending, move
   ``min(x'_c, remaining)`` from ``x'_c`` to ``x'_{c+1}``.  This mirrors
   the simulator's sweep, which repairs at most one share per block per
   epoch and always serves the most-at-risk class first.

The fixed point of this recursion is the steady-state distribution the
simulator's observed copy-count histogram is validated against (by
total-variation distance).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = [
    "mean_field_step",
    "mean_field_distribution",
    "mean_field_trajectory",
    "total_variation",
]


def _validate(
    copies: int, failure_probability: float, repair_fraction: float
) -> None:
    if copies < 1:
        raise ValueError("copies must be >= 1")
    if not 0.0 <= failure_probability < 1.0:
        raise ValueError("failure_probability must be in [0, 1)")
    if repair_fraction < 0.0:
        raise ValueError("repair_fraction must be >= 0")


def mean_field_step(
    distribution: Sequence[float],
    failure_probability: float,
    repair_fraction: float,
) -> List[float]:
    """Advance the copy-count distribution by one epoch.

    Args:
        distribution: ``x_0 .. x_k`` (length ``k + 1``, sums to 1).
        failure_probability: Per-device failure probability this epoch.
        repair_fraction: Fraction of the block population repairable this
            epoch (fleet repair budget / total blocks).

    Returns:
        The next distribution as a new list (same length, same total
        mass — both properties are pinned by tests).
    """
    copies = len(distribution) - 1
    _validate(copies, failure_probability, repair_fraction)
    p = failure_probability
    q = 1.0 - p
    thinned = [0.0] * (copies + 1)
    for c in range(copies + 1):
        mass = distribution[c]
        if mass == 0.0:
            continue
        if p == 0.0:
            thinned[c] += mass
            continue
        for lost in range(c + 1):
            weight = math.comb(c, lost) * (p ** lost) * (q ** (c - lost))
            thinned[c - lost] += mass * weight
    remaining = repair_fraction
    for c in range(1, copies):
        if remaining <= 0.0:
            break
        moved = min(thinned[c], remaining)
        if moved <= 0.0:
            continue
        thinned[c] -= moved
        thinned[c + 1] += moved
        remaining -= moved
    return thinned


def mean_field_trajectory(
    copies: int,
    epochs: int,
    failure_probability: float,
    repair_fraction: float,
    initial: Optional[Sequence[float]] = None,
) -> List[List[float]]:
    """Full trajectory ``[x(0), x(1), ..., x(epochs)]``.

    ``initial`` defaults to every block at full redundancy (a point mass
    on class ``k``, the simulator's starting state).
    """
    _validate(copies, failure_probability, repair_fraction)
    if epochs < 0:
        raise ValueError("epochs must be >= 0")
    if initial is None:
        state = [0.0] * (copies + 1)
        state[copies] = 1.0
    else:
        if len(initial) != copies + 1:
            raise ValueError("initial must have length copies + 1")
        state = list(initial)
    trajectory = [list(state)]
    for _ in range(epochs):
        state = mean_field_step(state, failure_probability, repair_fraction)
        trajectory.append(list(state))
    return trajectory


def mean_field_distribution(
    copies: int,
    failure_probability: float,
    repair_fraction: float,
    sample_epochs: Sequence[int],
    initial: Optional[Sequence[float]] = None,
) -> List[float]:
    """Predicted distribution averaged over ``sample_epochs``.

    The fleet simulator reports its steady-state histogram as the average
    of the samples in the second half of the run; passing the *same*
    epoch indices here produces the directly comparable mean-field
    prediction (compare with :func:`total_variation`).
    """
    _validate(copies, failure_probability, repair_fraction)
    marks = sorted(set(int(epoch) for epoch in sample_epochs))
    if not marks or marks[0] < 0:
        raise ValueError("sample_epochs must be non-empty and >= 0")
    if initial is None:
        state = [0.0] * (copies + 1)
        state[copies] = 1.0
    else:
        if len(initial) != copies + 1:
            raise ValueError("initial must have length copies + 1")
        state = list(initial)
    totals = [0.0] * (copies + 1)
    epoch = 0
    for mark in marks:
        while epoch < mark:
            state = mean_field_step(
                state, failure_probability, repair_fraction
            )
            epoch += 1
        for c in range(copies + 1):
            totals[c] += state[c]
    return [total / len(marks) for total in totals]


def total_variation(a: Sequence[float], b: Sequence[float]) -> float:
    """Total-variation distance ``0.5 * sum |a_c - b_c|`` in ``[0, 1]``."""
    if len(a) != len(b):
        raise ValueError("distributions must have the same length")
    return 0.5 * sum(abs(x - y) for x, y in zip(a, b))
