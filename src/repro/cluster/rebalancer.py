"""Throttled, incremental rebalancing.

A real system never migrates everything in one synchronous pass — it
trickles moves so client I/O keeps flowing.  The :class:`Rebalancer`
packages the lazy path the cluster exposes (``add_device(rebalance=False)``
+ ``migrate_block``): it snapshots the out-of-place backlog and migrates it
in bounded steps, reporting progress.  Reads and writes remain correct at
every intermediate point because the block map, not the strategy, is the
ground truth for stored blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .. import obs
from .cluster import Cluster


@dataclass
class RebalanceProgress:
    """Progress counters of an incremental rebalance.

    Attributes:
        total_blocks: Blocks in the backlog when the rebalance started.
        migrated_blocks: Blocks moved so far.
        moved_shares: Shares physically moved so far.
    """

    total_blocks: int
    migrated_blocks: int = 0
    moved_shares: int = 0

    @property
    def remaining(self) -> int:
        """Blocks still out of place."""
        return self.total_blocks - self.migrated_blocks

    @property
    def done(self) -> bool:
        """True when the backlog is drained."""
        return self.migrated_blocks >= self.total_blocks

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1]."""
        if self.total_blocks == 0:
            return 1.0
        return self.migrated_blocks / self.total_blocks


class Rebalancer:
    """Drains a cluster's out-of-place backlog in bounded steps."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._backlog: List[int] = cluster.out_of_place()
        self._progress = RebalanceProgress(total_blocks=len(self._backlog))
        sink = obs.sink()
        if sink.enabled:
            sink.emit("rebalance.start", backlog=len(self._backlog))

    @property
    def progress(self) -> RebalanceProgress:
        """Current progress counters."""
        return self._progress

    def step(self, max_blocks: int = 100) -> int:
        """Migrate up to ``max_blocks`` blocks; returns blocks moved.

        The chunk's target placements are computed in one batch against
        the cluster's *current* strategy (recomputed every step, so
        strategy swaps between steps stay correct) and handed to
        :meth:`~repro.cluster.cluster.Cluster.migrate_block`, which then
        only does per-block work for blocks that actually move.

        Blocks that became in-place on their own (e.g. rewritten by a
        client under the new layout) are skipped but still count as
        completed backlog.
        """
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        chunk = self._backlog[-max_blocks:]
        if not chunk:
            return 0
        del self._backlog[-len(chunk):]
        targets = self._cluster.strategy.place_many(chunk).tuples()
        migrated = 0
        moved_shares = 0
        # Pop order (end of the backlog first) is preserved.
        for address, target in zip(reversed(chunk), reversed(targets)):
            try:
                moved = self._cluster.migrate_block(address, target)
            except Exception:
                # Deleted while queued: nothing to migrate.
                self._progress.migrated_blocks += 1
                continue
            self._progress.migrated_blocks += 1
            self._progress.moved_shares += moved
            moved_shares += moved
            migrated += 1
        sink = obs.sink()
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("rebalance.steps").add(1)
            registry.counter("rebalance.migrated_blocks").add(migrated)
            registry.counter("rebalance.moved_shares").add(moved_shares)
            registry.histogram("rebalance.step_blocks").observe(len(chunk))
            sink.emit(
                "rebalance.step",
                chunk=len(chunk),
                migrated=migrated,
                moved_shares=moved_shares,
                remaining=self._progress.remaining,
            )
            if self._progress.done:
                sink.emit(
                    "rebalance.done",
                    migrated=self._progress.migrated_blocks,
                    moved_shares=self._progress.moved_shares,
                )
        return migrated

    def run_to_completion(self, step_size: int = 100) -> RebalanceProgress:
        """Drain the whole backlog (still via bounded steps)."""
        while not self._progress.done:
            if self.step(step_size) == 0 and not self._backlog:
                break
        return self._progress
