"""Append-only event log for cluster observability.

Every structural operation (writes are too frequent and are aggregated)
appends an event; tests and examples read the log to explain what a
scenario did, and the failure-injection tests assert recovery ordering
through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


@dataclass(frozen=True)
class Event:
    """One log entry.

    Attributes:
        sequence: Monotonic per-log sequence number.
        kind: Event type, e.g. ``"device-added"`` or ``"rebuild"``.
        details: Free-form payload describing the event.
    """

    sequence: int
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """An in-memory, append-only event journal."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, kind: str, **details: Any) -> Event:
        """Append an event and return it."""
        event = Event(sequence=len(self._events), kind=kind, details=details)
        self._events.append(event)
        return event

    def of_kind(self, kind: str) -> List[Event]:
        """All events of one kind, in order."""
        return [event for event in self._events if event.kind == kind]

    def as_tuples(self) -> List[tuple]:
        """The whole journal as comparable ``(kind, details)`` tuples.

        Determinism tests diff two runs' logs with this — it strips the
        sequence numbers (already implied by order) and freezes the detail
        dicts into sorted item tuples.
        """
        return [
            (event.kind, tuple(sorted(event.details.items())))
            for event in self._events
        ]

    def last(self) -> Event:
        """Most recent event.

        Raises:
            IndexError: if the log is empty.
        """
        return self._events[-1]

    def __iter__(self) -> Iterator[Event]:
        return iter(list(self._events))

    def __len__(self) -> int:
        return len(self._events)
