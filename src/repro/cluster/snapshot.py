"""Cluster snapshots: serialise and restore the data plane.

A snapshot captures everything the *data plane* holds — device specs and
states, the block map, block sizes, and every share payload (hex-encoded)
— as one JSON-compatible dict.  Restoring needs the same strategy factory
and erasure code the original cluster used (the control plane is code, not
data), mirroring how real systems persist layout epochs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..erasure.base import ErasureCode
from ..exceptions import ConfigurationError
from ..types import BinSpec
from .cluster import Cluster, StrategyFactory

#: Snapshot schema version; bump on incompatible changes.
SNAPSHOT_VERSION = 1


def take_snapshot(cluster: Cluster) -> Dict[str, Any]:
    """Capture the cluster's full data-plane state as a plain dict."""
    devices = []
    for device_id in cluster.device_ids():
        device = cluster.device(device_id)
        shares = {}
        if device.is_active:
            for key in device.share_keys():
                address, position = key
                shares[f"{address}:{position}"] = device.fetch(key).hex()
        devices.append(
            {
                "id": device_id,
                "capacity": device.capacity,
                "active": device.is_active,
                "shares": shares,
            }
        )
    blocks = {}
    for address in cluster.addresses():
        blocks[str(address)] = {
            "placement": list(cluster.placement_of(address)),
            "size": cluster.block_size_of(address),
        }
    return {
        "version": SNAPSHOT_VERSION,
        "copies": cluster.strategy.copies,
        "code": cluster.code.describe(),
        "devices": devices,
        "blocks": blocks,
    }


def snapshot_to_json(cluster: Cluster) -> str:
    """Snapshot as a JSON string."""
    return json.dumps(take_snapshot(cluster), sort_keys=True)


def restore_snapshot(
    snapshot: Dict[str, Any],
    strategy_factory: StrategyFactory,
    code: Optional[ErasureCode] = None,
) -> Cluster:
    """Rebuild a cluster from a snapshot.

    Args:
        snapshot: Output of :func:`take_snapshot` (or parsed JSON).
        strategy_factory: Must build strategies compatible with the ones
            the snapshotted cluster used (same namespace/parameters), or
            future reconfigurations will recompute different placements.
        code: Erasure code; must produce the same number of shares.

    Raises:
        ConfigurationError: on version or shape mismatches.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    specs = [
        BinSpec(entry["id"], entry["capacity"]) for entry in snapshot["devices"]
    ]
    cluster = Cluster(specs, strategy_factory, code=code)
    if cluster.strategy.copies != snapshot["copies"]:
        raise ConfigurationError(
            f"factory builds k={cluster.strategy.copies}, snapshot has "
            f"k={snapshot['copies']}"
        )
    if cluster.code.describe() != snapshot["code"]:
        raise ConfigurationError(
            f"code mismatch: {cluster.code.describe()} vs {snapshot['code']}"
        )

    for entry in snapshot["devices"]:
        device = cluster.device(entry["id"])
        for key_text, payload_hex in entry["shares"].items():
            address_text, position_text = key_text.split(":")
            device.store(
                (int(address_text), int(position_text)),
                bytes.fromhex(payload_hex),
            )
        if not entry["active"]:
            device.fail()
    for address_text, block in snapshot["blocks"].items():
        cluster.restore_block(
            int(address_text), tuple(block["placement"]), block["size"]
        )
    return cluster


def restore_from_json(
    text: str,
    strategy_factory: StrategyFactory,
    code: Optional[ErasureCode] = None,
) -> Cluster:
    """Rebuild a cluster from :func:`snapshot_to_json` output."""
    return restore_snapshot(json.loads(text), strategy_factory, code=code)
