"""Storage policies: several redundancy classes over one device pool.

Real deployments mix redundancy levels — hot data mirrored three ways,
cold data erasure-coded — on the *same* disks.  :class:`PolicyStore`
composes one physical device pool with any number of named policies, each
a (strategy factory, erasure code) pair running its own placement and
block map; capacity is naturally shared because all policies store into
the same :class:`~repro.cluster.device.StorageDevice` objects.

Address spaces are partitioned per policy (high bits carry the policy
index) so the share keys of different policies never collide on a device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..erasure.base import ErasureCode
from ..exceptions import ConfigurationError, DeviceNotFoundError
from ..placement.base import ReplicationStrategy
from ..types import BinSpec
from .cluster import Cluster, StrategyFactory
from .device import StorageDevice

#: Address bits reserved for the client address within a policy.
_ADDRESS_BITS = 48
_ADDRESS_MASK = (1 << _ADDRESS_BITS) - 1


@dataclass(frozen=True)
class StoragePolicy:
    """One redundancy class.

    Attributes:
        name: Policy name, e.g. ``"hot-mirror"``.
        strategy_factory: Placement builder for this class.
        code: Erasure code for this class (None = mirroring at the
            strategy's degree).
    """

    name: str
    strategy_factory: StrategyFactory
    code: Optional[ErasureCode] = None


class PolicyStore:
    """A device pool shared by multiple named redundancy policies."""

    def __init__(
        self,
        devices: Sequence[BinSpec],
        policies: Sequence[StoragePolicy],
    ) -> None:
        """Assemble the pool and its policies.

        Raises:
            ConfigurationError: on duplicate policy names or empty input.
        """
        if not policies:
            raise ConfigurationError("at least one policy is required")
        names = [policy.name for policy in policies]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate policy names in {names}")
        self._pool: Dict[str, StorageDevice] = {
            spec.bin_id: StorageDevice(spec.bin_id, spec.capacity)
            for spec in devices
        }
        self._specs = list(devices)
        self._clusters: Dict[str, Cluster] = {}
        self._policy_index: Dict[str, int] = {}
        for index, policy in enumerate(policies):
            self._policy_index[policy.name] = index
            self._clusters[policy.name] = Cluster(
                devices,
                policy.strategy_factory,
                code=policy.code,
                shared_devices=self._pool,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def policy_names(self) -> List[str]:
        """Names of the configured policies."""
        return sorted(self._clusters)

    def cluster_for(self, policy: str) -> Cluster:
        """The per-policy cluster (advanced use).

        Raises:
            ConfigurationError: for unknown policy names.
        """
        try:
            return self._clusters[policy]
        except KeyError:
            raise ConfigurationError(f"unknown policy {policy!r}") from None

    def device(self, device_id: str) -> StorageDevice:
        """A device of the shared pool."""
        try:
            return self._pool[device_id]
        except KeyError:
            raise DeviceNotFoundError(f"no device {device_id!r}") from None

    def device_usage(self) -> Dict[str, int]:
        """Shares stored per device, across all policies."""
        return {
            device_id: device.used for device_id, device in self._pool.items()
        }

    def _global_address(self, policy: str, address: int) -> int:
        if not 0 <= address <= _ADDRESS_MASK:
            raise ValueError(
                f"address out of range 0..2^{_ADDRESS_BITS}-1: {address}"
            )
        return (self._policy_index_of(policy) << _ADDRESS_BITS) | address

    def _policy_index_of(self, policy: str) -> int:
        try:
            return self._policy_index[policy]
        except KeyError:
            raise ConfigurationError(f"unknown policy {policy!r}") from None

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write(self, policy: str, address: int, payload: bytes) -> None:
        """Store a block under the given redundancy policy."""
        self.cluster_for(policy).write(
            self._global_address(policy, address), payload
        )

    def read(self, policy: str, address: int) -> bytes:
        """Fetch a block written under the given policy."""
        return self.cluster_for(policy).read(
            self._global_address(policy, address)
        )

    def delete(self, policy: str, address: int) -> None:
        """Remove a block written under the given policy."""
        self.cluster_for(policy).delete(self._global_address(policy, address))

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------

    def add_device(self, spec: BinSpec) -> Dict[str, int]:
        """Add a device to the pool; every policy rebalances onto it.

        Returns:
            Shares moved per policy.
        """
        if spec.bin_id in self._pool:
            raise ConfigurationError(f"device {spec.bin_id!r} already exists")
        self._pool[spec.bin_id] = StorageDevice(spec.bin_id, spec.capacity)
        self._specs.append(spec)
        moved = {}
        for name, cluster in self._clusters.items():
            # Hand the shared object to the policy cluster before its own
            # add_device bookkeeping runs.
            cluster._devices[spec.bin_id] = self._pool[spec.bin_id]
            cluster._specs[spec.bin_id] = spec
            report = cluster._rebalance("add", spec.bin_id)
            moved[name] = report.moved_shares
        return moved

    def fail_device(self, device_id: str) -> None:
        """Crash a pool device (affects every policy)."""
        self.device(device_id).fail()

    def repair_device(self, device_id: str) -> Dict[str, int]:
        """Replace and rebuild a device across all policies.

        Returns:
            Shares rebuilt per policy.
        """
        self.device(device_id).replace()
        rebuilt = {}
        for name, cluster in self._clusters.items():
            count = 0
            for address, position in cluster._map.shares_on(device_id):
                placement = cluster.placement_of(address)
                shares = cluster._collect_shares(address, placement)
                if position in shares:
                    continue
                payload = cluster._rebuild_share(address, shares, position)
                self._pool[device_id].store((address, position), payload)
                count += 1
            rebuilt[name] = count
        return rebuilt

    def verify(self) -> None:
        """Structural invariants across all policies, including that every
        stored share belongs to exactly one policy's map."""
        mapped = set()
        for cluster in self._clusters.values():
            cluster.verify()
            for device_id in cluster.device_ids():
                mapped.update(cluster._map.shares_on(device_id))
        for device_id, device in self._pool.items():
            if not device.is_active:
                continue
            for key in device.share_keys():
                assert key in mapped, (
                    f"orphan share {key} on pool device {device_id}"
                )
