"""The storage cluster: devices + placement strategy + erasure code.

This is the block-level storage virtualization the paper describes: clients
address a flat space of blocks; the cluster encodes each block into ``k``
shares, asks the placement strategy where the i-th share lives, and keeps
the physical layout in sync as devices enter, leave or fail.

The interesting operations are the reconfigurations:

* :meth:`Cluster.add_device` / :meth:`Cluster.remove_device` — rebuild the
  strategy for the new device set and migrate exactly the shares whose
  placement changed, returning a :class:`MigrationReport` (the quantity
  Figures 3/5 measure).
* :meth:`Cluster.fail_device` / :meth:`Cluster.repair_device` — crash a
  device (losing its contents) and rebuild the lost shares from surviving
  redundancy via the erasure code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..placement import precompute
from ..erasure.base import ErasureCode
from ..erasure.mirror import MirrorCode
from ..exceptions import (
    BlockNotFoundError,
    ConfigurationError,
    DeviceNotFoundError,
)
from ..placement.base import ReplicationStrategy
from ..types import BinSpec
from .blockmap import BlockMap
from .device import StorageDevice
from .events import EventLog

#: Builds a strategy for a device set; partial-apply strategy parameters.
StrategyFactory = Callable[[Sequence[BinSpec]], ReplicationStrategy]


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of a reconfiguration.

    Attributes:
        trigger: ``"add"`` or ``"remove"``.
        device_id: The affected device.
        moved_shares: Shares whose device changed (physically copied).
        rebuilt_shares: Moved shares that had to be reconstructed from
            redundancy because their source was failed/removed.
        total_shares: Shares tracked at the time of the change.
        used_on_affected: Shares on the affected device after an add /
            before a remove — the paper's ``used`` denominator.
    """

    trigger: str
    device_id: str
    moved_shares: int
    rebuilt_shares: int
    total_shares: int
    used_on_affected: int

    @property
    def movement_factor(self) -> float:
        """``replaced / used`` — the Figure 3/5 competitive factor."""
        if self.used_on_affected == 0:
            return 0.0
        return self.moved_shares / self.used_on_affected


@dataclass
class ClusterStats:
    """Point-in-time usage snapshot."""

    devices: Dict[str, int] = field(default_factory=dict)
    capacities: Dict[str, int] = field(default_factory=dict)

    @property
    def fill_percentages(self) -> Dict[str, float]:
        """Percent full per device."""
        return {
            device_id: 100.0 * self.devices[device_id] / capacity
            for device_id, capacity in self.capacities.items()
        }


class Cluster:
    """A reconfigurable, redundant block store over simulated devices."""

    def __init__(
        self,
        devices: Sequence[BinSpec],
        strategy_factory: StrategyFactory,
        code: Optional[ErasureCode] = None,
        shared_devices: Optional[Dict[str, StorageDevice]] = None,
    ) -> None:
        """Assemble the cluster.

        Args:
            devices: Initial device specs.
            strategy_factory: Builds the placement strategy for any device
                set, e.g. ``lambda bins: RedundantShare(bins, copies=2)``.
            code: Erasure code for block payloads; defaults to plain
                mirroring matching the strategy's replication degree.
            shared_devices: Pre-existing device objects to store into
                (instead of creating fresh ones) — used by
                :class:`~repro.cluster.policies.PolicyStore` so several
                redundancy policies share one physical pool.  Shares from
                other users of the pool are then tolerated by
                :meth:`verify`.

        Raises:
            ConfigurationError: if the code's share count disagrees with
                the strategy's replication degree, or shared devices are
                missing for some spec.
        """
        self._factory = strategy_factory
        self._epoch = precompute.bump_epoch()
        self._strategy = strategy_factory(list(devices))
        self._code = code or MirrorCode(self._strategy.copies)
        if self._code.total_shares != self._strategy.copies:
            raise ConfigurationError(
                f"code produces {self._code.total_shares} shares but the "
                f"strategy places {self._strategy.copies} copies"
            )
        if shared_devices is None:
            self._devices = {
                spec.bin_id: StorageDevice(spec.bin_id, spec.capacity)
                for spec in devices
            }
            self._shared_pool = False
        else:
            missing = [
                spec.bin_id
                for spec in devices
                if spec.bin_id not in shared_devices
            ]
            if missing:
                raise ConfigurationError(
                    f"shared pool lacks devices: {missing}"
                )
            self._devices = {
                spec.bin_id: shared_devices[spec.bin_id] for spec in devices
            }
            self._shared_pool = True
        self._specs: Dict[str, BinSpec] = {spec.bin_id: spec for spec in devices}
        self._map = BlockMap()
        self._log = EventLog()
        self._block_sizes: Dict[int, int] = {}
        self._log.record("cluster-created", devices=len(self._devices))
        sink = obs.sink()
        if sink.enabled:
            sink.emit("cluster.created", devices=len(self._devices))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def strategy(self) -> ReplicationStrategy:
        """The current placement strategy snapshot."""
        return self._strategy

    @property
    def epoch(self) -> int:
        """Placement epoch the current strategy snapshot was built under.

        Advances on every strategy swap (construction, add/remove device,
        rebalance, capacity change) and keys the shared precompute cache —
        see :mod:`repro.placement.precompute`.  State cached for an earlier
        epoch can never leak into the snapshot built after a swap.
        """
        return self._epoch

    def _new_strategy(self) -> ReplicationStrategy:
        """Build a fresh-epoch strategy snapshot for the current specs.

        The epoch is bumped *before* the factory runs so the instance it
        builds — and anything it precomputes — belongs to the new epoch.
        """
        self._epoch = precompute.bump_epoch()
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("cluster.strategy_swaps").add(1)
        return self._factory(
            [self._specs[device_id] for device_id in sorted(self._specs)]
        )

    @property
    def code(self) -> ErasureCode:
        """The erasure code in use."""
        return self._code

    @property
    def log(self) -> EventLog:
        """The cluster's event journal."""
        return self._log

    @property
    def block_count(self) -> int:
        """Number of blocks currently stored."""
        return len(self._map)

    def addresses(self) -> List[int]:
        """All stored block addresses (snapshot)."""
        return list(self._map.addresses())

    def placement_of(self, address: int) -> "tuple":
        """Recorded placement of a stored block.

        Raises:
            BlockNotFoundError: if the block was never written.
        """
        return self._map.lookup(address)

    def block_size_of(self, address: int) -> int:
        """Original payload size of a stored block.

        Raises:
            BlockNotFoundError: if the block was never written.
        """
        self._map.lookup(address)  # raises for unknown blocks
        return self._block_sizes[address]

    def restore_block(self, address: int, placement, size: int) -> None:
        """Register a block's metadata without writing shares.

        Snapshot-restore plumbing: the share payloads are loaded directly
        onto the devices, and this records the matching map entry.
        """
        self._map.record(address, tuple(placement))
        self._block_sizes[address] = size

    def device_ids(self) -> List[str]:
        """Sorted ids of all (active or failed) devices."""
        return sorted(self._devices)

    def device(self, device_id: str) -> StorageDevice:
        """Access one device.

        Raises:
            DeviceNotFoundError: for unknown ids.
        """
        try:
            return self._devices[device_id]
        except KeyError:
            raise DeviceNotFoundError(f"no device {device_id!r}") from None

    def shares_on(self, device_id: str) -> List["tuple"]:
        """Share keys ``(address, position)`` mapped to a device.

        The mapping view, not the physical one: after a crash the device
        holds nothing, but the map still says which shares belong there —
        exactly the work list a repair pipeline needs.

        Raises:
            DeviceNotFoundError: for unknown ids.
        """
        self.device(device_id)  # raises for unknown ids
        return list(self._map.shares_on(device_id))

    def stats(self) -> ClusterStats:
        """Usage snapshot for fairness reporting."""
        return ClusterStats(
            devices={
                device_id: device.used
                for device_id, device in self._devices.items()
            },
            capacities={
                device_id: device.capacity
                for device_id, device in self._devices.items()
            },
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write(self, address: int, payload: bytes) -> None:
        """Store a block: encode, place, persist all shares.

        Writes are *degraded-mode tolerant*: shares whose target device is
        currently failed are skipped (the placement is still recorded, and
        :meth:`repair_device` rebuilds them from the stored redundancy).
        """
        shares = self._code.encode(payload)
        placement = self._strategy.place(address)
        if self._map.contains(address):
            self._drop_shares(address)
        for position, (device_id, share) in enumerate(zip(placement, shares)):
            device = self._devices[device_id]
            if device.is_active:
                device.store((address, position), share)
        self._map.record(address, placement)
        self._block_sizes[address] = len(payload)

    def read(self, address: int) -> bytes:
        """Fetch a block, decoding around failed devices.

        Raises:
            BlockNotFoundError: if the block was never written.
            DecodingError: if too few shares survive.
        """
        placement = self._map.lookup(address)
        shares: Dict[int, bytes] = {}
        for position, device_id in enumerate(placement):
            device = self._devices.get(device_id)
            if device is None or not device.is_active:
                continue
            if device.holds((address, position)):
                shares[position] = device.fetch((address, position))
        payload = self._code.decode(shares)
        return payload[: self._block_sizes[address]]

    def delete(self, address: int) -> None:
        """Remove a block and its shares.

        Raises:
            BlockNotFoundError: if the block was never written.
        """
        self._map.lookup(address)  # raises for unknown blocks
        self._drop_shares(address)
        self._map.forget(address)
        self._block_sizes.pop(address, None)

    def _drop_shares(self, address: int) -> None:
        placement = self._map.lookup(address)
        for position, device_id in enumerate(placement):
            device = self._devices.get(device_id)
            if device is not None and device.is_active:
                device.discard((address, position))

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    def add_device(self, spec: BinSpec, rebalance: bool = True) -> MigrationReport:
        """Bring a new device online and (by default) rebalance.

        With ``rebalance=False`` the placement strategy is updated but no
        data moves: new writes use the new layout immediately, and existing
        blocks stay where the map says until migrated — lazily via
        :meth:`migrate_block` / :class:`~repro.cluster.rebalancer.Rebalancer`.

        Raises:
            ConfigurationError: if the id already exists.
        """
        if spec.bin_id in self._devices:
            raise ConfigurationError(f"device {spec.bin_id!r} already exists")
        self._devices[spec.bin_id] = StorageDevice(spec.bin_id, spec.capacity)
        self._specs[spec.bin_id] = spec
        if rebalance:
            report = self._rebalance("add", spec.bin_id)
        else:
            self._strategy = self._new_strategy()
            report = MigrationReport(
                trigger="add",
                device_id=spec.bin_id,
                moved_shares=0,
                rebuilt_shares=0,
                total_shares=len(self._map) * self._strategy.copies,
                used_on_affected=0,
            )
        self._log.record(
            "device-added", device=spec.bin_id, moved=report.moved_shares
        )
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("cluster.devices_added").add(1)
            sink.emit(
                "device.added",
                device=spec.bin_id,
                rebalance=rebalance,
                moved=report.moved_shares,
            )
        return report

    def out_of_place(self) -> List[int]:
        """Blocks whose recorded placement differs from the current
        strategy's — the backlog of a lazy reconfiguration.

        Computed with one batch placement over all stored addresses (the
        strategy's vectorized engine where available) instead of a
        per-block lookup loop.
        """
        addresses = list(self._map.addresses())
        placements = self._strategy.place_many(addresses).tuples()
        lookup = self._map.lookup
        return [
            address
            for address, placement in zip(addresses, placements)
            if lookup(address) != placement
        ]

    def migrate_block(
        self, address: int, new_placement: Optional[Sequence[str]] = None
    ) -> int:
        """Move one block to its current-strategy placement.

        Args:
            address: The block to migrate.
            new_placement: Precomputed target placement for the *current*
                strategy, as produced by ``strategy.place_many`` — batch
                callers (the rebalancer) pass it to avoid re-placing every
                block; when omitted it is computed here.

        Returns:
            Number of shares physically moved (0 if already in place).

        Raises:
            BlockNotFoundError: if the block was never written.
        """
        old_placement = self._map.lookup(address)
        if new_placement is None:
            new_placement = self._strategy.place(address)
        else:
            new_placement = tuple(new_placement)
        if old_placement == new_placement:
            return 0
        shares = self._collect_shares(address, old_placement)
        moved = 0
        for position, (old_id, new_id) in enumerate(
            zip(old_placement, new_placement)
        ):
            if old_id == new_id:
                continue
            if position in shares:
                payload = shares[position]
            else:
                payload = self._rebuild_share(address, shares, position)
            old_device = self._devices.get(old_id)
            if old_device is not None and old_device.is_active:
                old_device.discard((address, position))
            target = self._devices[new_id]
            if target.is_active:
                target.store((address, position), payload)
            moved += 1
        self._map.record(address, new_placement)
        if moved and obs.sink().enabled:
            obs.metrics().counter("cluster.moved_shares").add(moved)
        return moved

    def remove_device(self, device_id: str) -> MigrationReport:
        """Drain and remove a device (graceful decommission).

        Raises:
            DeviceNotFoundError: for unknown ids.
        """
        if device_id not in self._devices:
            raise DeviceNotFoundError(f"no device {device_id!r}")
        used_before = self._map.share_count(device_id)
        self._specs.pop(device_id)
        report = self._rebalance("remove", device_id, used_override=used_before)
        removed = self._devices.pop(device_id)
        self._log.record(
            "device-removed",
            device=device_id,
            moved=report.moved_shares,
            leftover=removed.used,
        )
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("cluster.devices_removed").add(1)
            sink.emit(
                "device.removed",
                device=device_id,
                moved=report.moved_shares,
                leftover=removed.used,
            )
        return report

    def _rebalance(
        self, trigger: str, affected: str, used_override: Optional[int] = None
    ) -> MigrationReport:
        """Rebuild the strategy and migrate shares whose placement changed."""
        new_strategy = self._new_strategy()
        moved = 0
        rebuilt = 0
        total = 0
        addresses = list(self._map.addresses())
        # One vectorized batch placement for the whole population; the
        # per-block loop below only runs for blocks that actually move.
        new_placements = new_strategy.place_many(addresses).tuples()
        for address, new_placement in zip(addresses, new_placements):
            old_placement = self._map.lookup(address)
            total += len(new_placement)
            if old_placement == new_placement:
                continue
            shares = self._collect_shares(address, old_placement)
            for position, (old_id, new_id) in enumerate(
                zip(old_placement, new_placement)
            ):
                if old_id == new_id:
                    continue
                moved += 1
                if position in shares:
                    payload = shares[position]
                else:
                    payload = self._rebuild_share(address, shares, position)
                    rebuilt += 1
                old_device = self._devices.get(old_id)
                if old_device is not None and old_device.is_active:
                    old_device.discard((address, position))
                target = self._devices[new_id]
                if target.is_active:
                    target.store((address, position), payload)
            self._map.record(address, new_placement)
        self._strategy = new_strategy
        used = (
            used_override
            if used_override is not None
            else self._map.share_count(affected)
        )
        sink = obs.sink()
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("cluster.moved_shares").add(moved)
            registry.counter("cluster.rebuilt_shares").add(rebuilt)
            sink.emit(
                "cluster.migration",
                trigger=trigger,
                device=affected,
                moved=moved,
                rebuilt=rebuilt,
                total=total,
                used=used,
            )
        return MigrationReport(
            trigger=trigger,
            device_id=affected,
            moved_shares=moved,
            rebuilt_shares=rebuilt,
            total_shares=total,
            used_on_affected=used,
        )

    def _collect_shares(self, address, placement) -> Dict[int, bytes]:
        shares: Dict[int, bytes] = {}
        for position, device_id in enumerate(placement):
            device = self._devices.get(device_id)
            if device is None or not device.is_active:
                continue
            if device.holds((address, position)):
                shares[position] = device.fetch((address, position))
        return shares

    def _rebuild_share(
        self, address: int, shares: Dict[int, bytes], position: int
    ) -> bytes:
        block = self._code.decode(shares)
        return self._code.encode(block)[position]

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------

    def fail_device(self, device_id: str) -> None:
        """Crash a device; its contents are lost until repaired.

        Raises:
            DeviceNotFoundError: for unknown ids.
        """
        self.device(device_id).fail()
        self._log.record("device-failed", device=device_id)
        sink = obs.sink()
        if sink.enabled:
            obs.metrics().counter("cluster.devices_failed").add(1)
            sink.emit("device.failed", device=device_id)

    def repair_device(self, device_id: str) -> int:
        """Replace a failed device and rebuild its shares from redundancy.

        Returns:
            Number of shares reconstructed.

        Raises:
            DeviceNotFoundError: for unknown ids.
            DecodingError: if some block lost too many shares to rebuild.
        """
        device = self.device(device_id)
        device.replace()
        rebuilt = 0
        for address, position in self._map.shares_on(device_id):
            placement = self._map.lookup(address)
            shares = self._collect_shares(address, placement)
            if position in shares:
                continue  # already present (e.g. repaired twice)
            payload = self._rebuild_share(address, shares, position)
            device.store((address, position), payload)
            rebuilt += 1
        self._log.record("device-repaired", device=device_id, rebuilt=rebuilt)
        sink = obs.sink()
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("cluster.devices_repaired").add(1)
            registry.counter("cluster.rebuilt_shares").add(rebuilt)
            sink.emit("device.repaired", device=device_id, rebuilt=rebuilt)
        return rebuilt

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> None:
        """Check the cluster's structural invariants.

        * every mapped share exists on its active device;
        * the redundancy property holds (k distinct devices per block);
        * no active device stores shares the map does not know about.

        Raises:
            AssertionError: on any violation — this is a test/debug API.
        """
        for address in self._map.addresses():
            placement = self._map.lookup(address)
            assert len(set(placement)) == len(placement), (
                f"redundancy violated for block {address}: {placement}"
            )
            for position, device_id in enumerate(placement):
                device = self._devices[device_id]
                if device.is_active:
                    assert device.holds((address, position)), (
                        f"share ({address},{position}) missing on {device_id}"
                    )
        if self._shared_pool:
            return  # other policies' shares live on the same devices
        mapped = {
            key
            for device_id in self._devices
            for key in self._map.shares_on(device_id)
        }
        for device_id, device in self._devices.items():
            if not device.is_active:
                continue
            for key in device.share_keys():
                assert key in mapped, (
                    f"orphan share {key} on device {device_id}"
                )
