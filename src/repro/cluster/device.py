"""A simulated block storage device.

Devices store *shares*: the (address, copy-position) pieces an erasure code
produces for a block.  Capacity is counted in shares, matching the paper's
model where a bin stores up to ``b_i`` ball copies.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Tuple

from ..exceptions import BlockNotFoundError, CapacityExceededError

#: A share key: (block address, copy position).
ShareKey = Tuple[int, int]


class DeviceState(enum.Enum):
    """Operational state of a device."""

    ACTIVE = "active"
    FAILED = "failed"


class StorageDevice:
    """One storage device ("bin") holding share payloads."""

    def __init__(self, device_id: str, capacity: int) -> None:
        """Create an empty device.

        Args:
            device_id: Unique stable name.
            capacity: Maximum number of shares the device can hold.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._device_id = device_id
        self._capacity = capacity
        self._shares: Dict[ShareKey, bytes] = {}
        self._state = DeviceState.ACTIVE

    @property
    def device_id(self) -> str:
        """The device name."""
        return self._device_id

    @property
    def capacity(self) -> int:
        """Maximum shares storable."""
        return self._capacity

    @property
    def used(self) -> int:
        """Shares currently stored."""
        return len(self._shares)

    @property
    def fill_fraction(self) -> float:
        """``used / capacity`` (the Figure 2/4 quantity, as a fraction)."""
        return self.used / self._capacity

    @property
    def state(self) -> DeviceState:
        """ACTIVE or FAILED."""
        return self._state

    @property
    def is_active(self) -> bool:
        """Convenience state check."""
        return self._state is DeviceState.ACTIVE

    def store(self, key: ShareKey, payload: bytes) -> None:
        """Store (or overwrite) a share.

        Raises:
            CapacityExceededError: if the device is full.
            IOError: if the device has failed.
        """
        self._check_active("store")
        if key not in self._shares and self.used >= self._capacity:
            raise CapacityExceededError(
                f"device {self._device_id!r} is full "
                f"({self.used}/{self._capacity} shares)"
            )
        self._shares[key] = bytes(payload)

    def fetch(self, key: ShareKey) -> bytes:
        """Read a share.

        Raises:
            BlockNotFoundError: if the share is not stored here.
            IOError: if the device has failed.
        """
        self._check_active("fetch")
        try:
            return self._shares[key]
        except KeyError:
            raise BlockNotFoundError(
                f"device {self._device_id!r} holds no share {key}"
            ) from None

    def discard(self, key: ShareKey) -> None:
        """Drop a share if present (idempotent)."""
        self._check_active("discard")
        self._shares.pop(key, None)

    def holds(self, key: ShareKey) -> bool:
        """True if the share is stored here (regardless of device state)."""
        return key in self._shares

    def share_keys(self) -> Iterator[ShareKey]:
        """Iterate the stored share keys (snapshot)."""
        return iter(list(self._shares))

    def fail(self) -> None:
        """Crash the device: contents become inaccessible and are lost."""
        self._state = DeviceState.FAILED
        self._shares.clear()

    def replace(self) -> None:
        """Swap in a fresh, empty device under the same name."""
        self._shares.clear()
        self._state = DeviceState.ACTIVE

    def _check_active(self, operation: str) -> None:
        if self._state is not DeviceState.ACTIVE:
            raise IOError(
                f"cannot {operation} on failed device {self._device_id!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StorageDevice {self._device_id} {self.used}/{self._capacity} "
            f"{self._state.value}>"
        )
