"""The cluster simulator: devices, block map, reconfiguration, failures."""

from .blockmap import BlockMap
from .cluster import Cluster, ClusterStats, MigrationReport
from .device import DeviceState, StorageDevice
from .events import Event, EventLog
from .failures import FailureInjector, FailureReport
from .policies import PolicyStore, StoragePolicy
from .rebalancer import RebalanceProgress, Rebalancer
from .scrub import ChecksumIndex, ScrubReport, Scrubber, corrupt_share
from .snapshot import (
    restore_from_json,
    restore_snapshot,
    snapshot_to_json,
    take_snapshot,
)

__all__ = [
    "BlockMap",
    "ChecksumIndex",
    "Cluster",
    "ClusterStats",
    "DeviceState",
    "Event",
    "EventLog",
    "FailureInjector",
    "FailureReport",
    "MigrationReport",
    "PolicyStore",
    "RebalanceProgress",
    "Rebalancer",
    "ScrubReport",
    "Scrubber",
    "StorageDevice",
    "StoragePolicy",
    "corrupt_share",
    "restore_from_json",
    "restore_snapshot",
    "snapshot_to_json",
    "take_snapshot",
]
