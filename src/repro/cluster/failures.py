"""Deterministic failure injection for the cluster simulator.

Used by the failure-recovery example and the fault-tolerance tests: pick
victims reproducibly, crash them, optionally repair, and report what
survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .. import obs
from ..exceptions import DecodingError
from ..hashing.primitives import stable_u64
from .cluster import Cluster


@dataclass(frozen=True)
class FailureReport:
    """Outcome of one failure round.

    Attributes:
        failed: Devices crashed this round.
        readable_blocks: Blocks still readable afterwards.
        lost_blocks: Blocks that lost too many shares.
        rebuilt_shares: Shares reconstructed by subsequent repair (0 if no
            repair was requested).
    """

    failed: List[str]
    readable_blocks: int
    lost_blocks: int
    rebuilt_shares: int


class FailureInjector:
    """Reproducible device-failure campaigns."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._round = 0

    def choose_victims(
        self,
        cluster: Cluster,
        count: int,
        exclude: Sequence[str] = (),
    ) -> List[str]:
        """Pick ``count`` distinct active devices deterministically.

        Args:
            cluster: The cluster to pick from.
            count: Number of distinct victims.
            exclude: Device ids never picked — chaos schedules use this so
                one device does not receive overlapping faults.

        Raises:
            ValueError: if fewer than ``count`` eligible devices remain.
        """
        excluded = set(exclude)
        active = [
            device_id
            for device_id in cluster.device_ids()
            if cluster.device(device_id).is_active
            and device_id not in excluded
        ]
        if count > len(active):
            raise ValueError(
                f"cannot fail {count} of {len(active)} eligible devices"
            )
        victims: List[str] = []
        pool = list(active)
        for pick in range(count):
            index = stable_u64("victim", self._seed, self._round, pick) % len(pool)
            victims.append(pool.pop(index))
        return victims

    def crash(
        self, cluster: Cluster, count: int, repair: bool = True
    ) -> FailureReport:
        """Fail ``count`` devices, survey damage, optionally repair.

        Repair happens one device at a time (as a real rebuild would), so
        with ``count <= tolerance`` everything must come back.
        """
        self._round += 1
        victims = self.choose_victims(cluster, count)
        for victim in victims:
            cluster.fail_device(victim)

        readable = 0
        lost = 0
        for address in cluster.addresses():
            try:
                cluster.read(address)
                readable += 1
            except DecodingError:
                lost += 1

        rebuilt = 0
        if repair:
            for victim in victims:
                rebuilt += cluster.repair_device(victim)
        sink = obs.sink()
        if sink.enabled:
            registry = obs.metrics()
            registry.counter("failure.rounds").add(1)
            registry.counter("failure.blocks_lost").add(lost)
            sink.emit(
                "failure.round",
                round=self._round,
                victims=list(victims),
                readable=readable,
                lost=lost,
                rebuilt=rebuilt,
            )
        return FailureReport(
            failed=victims,
            readable_blocks=readable,
            lost_blocks=lost,
            rebuilt_shares=rebuilt,
        )
