"""Scrubbing: detect and repair silent share corruption.

Real storage systems periodically *scrub*: re-read every share, verify a
checksum, and rebuild anything that rotted.  The simulator supports this
end to end: :class:`ChecksumIndex` remembers the expected digest of every
share at write time, :func:`corrupt_share` flips bytes (for tests and
chaos experiments), and :class:`Scrubber` walks the cluster, reports
mismatches and repairs them from redundancy via the erasure code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exceptions import DeviceNotFoundError
from ..hashing.primitives import stable_u64
from .cluster import Cluster

ShareKey = Tuple[int, int]


def share_digest(payload: bytes) -> int:
    """64-bit content digest used by the scrubber."""
    return stable_u64(b"scrub", payload)


class ChecksumIndex:
    """Expected digests of every live share of a cluster.

    Built (or refreshed) from the cluster's current, trusted state; the
    scrubber compares live payloads against it later.
    """

    def __init__(self) -> None:
        self._digests: Dict[ShareKey, int] = {}

    def capture(self, cluster: Cluster) -> int:
        """Record digests for every share currently stored.

        Returns:
            Number of shares captured.
        """
        self._digests.clear()
        count = 0
        for device_id in cluster.device_ids():
            device = cluster.device(device_id)
            if not device.is_active:
                continue
            for key in device.share_keys():
                self._digests[key] = share_digest(device.fetch(key))
                count += 1
        return count

    def expected(self, key: ShareKey) -> int:
        """Expected digest of one share.

        Raises:
            KeyError: if the share was never captured.
        """
        return self._digests[key]

    def update(self, key: ShareKey, payload: bytes) -> None:
        """Refresh one share's digest (after a legitimate rewrite)."""
        self._digests[key] = share_digest(payload)

    def __len__(self) -> int:
        return len(self._digests)


def corrupt_share(cluster: Cluster, device_id: str, key: ShareKey) -> None:
    """Flip bits of one stored share (test/chaos helper).

    Raises:
        DeviceNotFoundError: for unknown devices.
        BlockNotFoundError: if the share is not on that device.
    """
    device = cluster.device(device_id)
    payload = bytearray(device.fetch(key))
    if not payload:
        payload = bytearray(b"\xff")
    else:
        payload[0] ^= 0xFF
    device.store(key, bytes(payload))


@dataclass
class ScrubReport:
    """Outcome of one scrub pass.

    Attributes:
        scanned: Shares whose digests were verified.
        corrupt: Shares whose digest mismatched.
        repaired: Corrupt shares successfully rebuilt from redundancy.
        unrepairable: Corrupt shares that could not be rebuilt.
        corrupt_keys: The (device, share) pairs that mismatched.
    """

    scanned: int = 0
    corrupt: int = 0
    repaired: int = 0
    unrepairable: int = 0
    corrupt_keys: List[Tuple[str, ShareKey]] = field(default_factory=list)


class Scrubber:
    """Verify-and-repair walker over a cluster."""

    def __init__(self, cluster: Cluster, index: ChecksumIndex) -> None:
        self._cluster = cluster
        self._index = index

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Verify every live share against the index; optionally repair.

        Repair re-derives the share from the block's *other* shares: the
        corrupt copy is discarded, the erasure code decodes the block from
        the survivors, and the share is rewritten and re-indexed.
        """
        report = ScrubReport()
        cluster = self._cluster
        code = cluster.code
        for device_id in cluster.device_ids():
            device = cluster.device(device_id)
            if not device.is_active:
                continue
            for key in device.share_keys():
                payload = device.fetch(key)
                try:
                    expected = self._index.expected(key)
                except KeyError:
                    continue  # written after capture; nothing to check
                report.scanned += 1
                if share_digest(payload) == expected:
                    continue
                report.corrupt += 1
                report.corrupt_keys.append((device_id, key))
                if not repair:
                    continue
                address, position = key
                placement = cluster.placement_of(address)
                # Rebuild only from *verified* survivors: a block may have
                # several rotten shares, and decoding from an unverified
                # sibling would launder the corruption into the repair.
                survivors: Dict[int, bytes] = {}
                for other_position, other_id in enumerate(placement):
                    if other_position == position:
                        continue
                    other = cluster.device(other_id)
                    other_key = (address, other_position)
                    if not (other.is_active and other.holds(other_key)):
                        continue
                    candidate = other.fetch(other_key)
                    try:
                        trusted = (
                            share_digest(candidate)
                            == self._index.expected(other_key)
                        )
                    except KeyError:
                        trusted = True  # written after capture: no record
                    if trusted:
                        survivors[other_position] = candidate
                try:
                    block = code.decode(survivors)
                except Exception:
                    report.unrepairable += 1
                    continue
                rebuilt = code.encode(block)[position]
                device.store(key, rebuilt)
                self._index.update(key, rebuilt)
                report.repaired += 1
        return report
