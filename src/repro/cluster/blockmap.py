"""The block map: which devices hold the shares of which block.

Hash-based placement makes this map *recomputable*, but the cluster keeps
an explicit copy for two reasons: it is the ground truth the simulator
verifies strategies against, and it mirrors what a real virtualization
layer caches to avoid recomputing lookups on the data path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..exceptions import BlockNotFoundError
from ..types import Placement

ShareLocation = Tuple[int, int]  # (address, position)


class BlockMap:
    """Bidirectional index between blocks and devices."""

    def __init__(self) -> None:
        self._placements: Dict[int, Placement] = {}
        self._by_device: Dict[str, Set[ShareLocation]] = {}

    def record(self, address: int, placement: Placement) -> None:
        """Insert or replace the placement of a block."""
        if address in self._placements:
            self.forget(address)
        self._placements[address] = tuple(placement)
        for position, device_id in enumerate(placement):
            self._by_device.setdefault(device_id, set()).add(
                (address, position)
            )

    def record_many(self, addresses, placements) -> None:
        """Bulk insert/replace placements for parallel address sequences.

        Equivalent to calling :meth:`record` pairwise, with the dict and
        set lookups hoisted out of the per-share loop — the path bulk
        loads (snapshot restore, batch writes) go through.
        """
        own_placements = self._placements
        by_device = self._by_device
        for address, placement in zip(addresses, placements):
            if address in own_placements:
                self.forget(address)
            stored = tuple(placement)
            own_placements[address] = stored
            for position, device_id in enumerate(stored):
                shares = by_device.get(device_id)
                if shares is None:
                    shares = by_device[device_id] = set()
                shares.add((address, position))

    def lookup(self, address: int) -> Placement:
        """Placement of a block.

        Raises:
            BlockNotFoundError: if the block was never written.
        """
        try:
            return self._placements[address]
        except KeyError:
            raise BlockNotFoundError(f"block {address} is not mapped") from None

    def contains(self, address: int) -> bool:
        """True if the block is mapped."""
        return address in self._placements

    def forget(self, address: int) -> None:
        """Remove a block from the map (idempotent)."""
        placement = self._placements.pop(address, None)
        if placement is None:
            return
        for position, device_id in enumerate(placement):
            shares = self._by_device.get(device_id)
            if shares is not None:
                shares.discard((address, position))
                if not shares:
                    del self._by_device[device_id]

    def shares_on(self, device_id: str) -> List[ShareLocation]:
        """All (address, position) shares mapped to a device."""
        return sorted(self._by_device.get(device_id, ()))

    def blocks_on(self, device_id: str) -> List[int]:
        """Distinct block addresses with at least one share on a device.

        The blast radius of losing that device — what the chaos layer
        surveys after a crash to prioritise re-replication.
        """
        return sorted({address for address, _ in self._by_device.get(device_id, ())})

    def share_count(self, device_id: str) -> int:
        """Number of shares mapped to a device."""
        return len(self._by_device.get(device_id, ()))

    def addresses(self) -> Iterator[int]:
        """Iterate all mapped block addresses (snapshot)."""
        return iter(list(self._placements))

    def __len__(self) -> int:
        return len(self._placements)
