#!/usr/bin/env python3
"""Quickstart: fair, redundant placement over heterogeneous disks.

Builds a Redundant Share strategy over three unequal disks, shows that

* every block gets k copies on k *distinct* disks (redundancy),
* each disk receives a share of copies proportional to its capacity
  (fairness), and
* adding a disk moves only a bounded amount of data (adaptivity),

which are exactly the three guarantees of the ICDCS 2007 paper.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro import BinSpec, RedundantShare
from repro.metrics import compare_strategies


def main() -> None:
    disks = [
        BinSpec("ssd-large", 1200),
        BinSpec("ssd-medium", 800),
        BinSpec("hdd-small", 500),
    ]
    strategy = RedundantShare(disks, copies=2)

    print("=== Placement is deterministic and redundant ===")
    for address in range(5):
        placement = strategy.place(address)
        print(f"block {address}: primary={placement[0]:<11} mirror={placement[1]}")
        assert placement[0] != placement[1]

    print("\n=== Fairness: shares track capacity ===")
    balls = 100_000
    counts = Counter()
    for address in range(balls):
        counts.update(strategy.place(address))
    total_copies = sum(counts.values())
    for disk_id, expected in sorted(strategy.expected_shares().items()):
        observed = counts[disk_id] / total_copies
        print(
            f"{disk_id:<11} expected {expected:6.1%}   observed {observed:6.1%}"
        )

    print("\n=== Adaptivity: growing the pool moves little data ===")
    grown = disks + [BinSpec("ssd-new", 1000)]
    new_strategy = RedundantShare(grown, copies=2)
    report = compare_strategies(
        strategy, new_strategy, range(balls // 10), ["ssd-new"]
    )
    print(f"copies on the new disk : {report.used_on_affected}")
    print(f"copies moved           : {report.moved_positional}")
    print(
        f"competitive factor     : {report.factor_positional:.2f} "
        f"(paper bound for k=2: 4)"
    )


if __name__ == "__main__":
    main()
