#!/usr/bin/env python3
"""An S3-style object store that expands online, without downtime.

The full stack in one story:

    ObjectStore  ->  VirtualVolume  ->  Cluster  ->  RedundantShare (k=2)

We store a few hundred named objects, add a new storage node *lazily* (no
data moves yet), keep serving reads and writes, trickle the migration in
small steps with the Rebalancer — and verify every object byte-for-byte at
every stage.

Run:  python examples/object_store_scale_out.py
"""

from repro.cluster import Cluster, Rebalancer
from repro.core import ObjectStore, RedundantShare, VirtualVolume
from repro.types import BinSpec, bins_from_capacities


def checksum_all(store, blobs):
    for name, payload in blobs.items():
        assert store.get(name) == payload, f"object {name} corrupted!"


def main() -> None:
    cluster = Cluster(
        bins_from_capacities([6000, 5000, 4000, 3000], prefix="node"),
        lambda bins: RedundantShare(bins, copies=2),
    )
    store = ObjectStore(VirtualVolume(cluster, block_size=256))

    blobs = {
        f"bucket/{kind}/{index:03d}": (kind.encode() + bytes([index])) * (20 + index)
        for kind in ("logs", "images", "models")
        for index in range(80)
    }
    for name, payload in blobs.items():
        store.put(name, payload)
    print(f"stored {len(blobs)} objects "
          f"({sum(len(b) for b in blobs.values())} bytes) "
          f"on {len(cluster.device_ids())} nodes")

    fills = cluster.stats().fill_percentages
    print("fill levels:", {k: f"{v:.1f}%" for k, v in sorted(fills.items())})

    print("\nadding node-4 lazily (no data moves yet) ...")
    cluster.add_device(BinSpec("node-4", 6000), rebalance=False)
    backlog = cluster.out_of_place()
    print(f"migration backlog: {len(backlog)} blocks")
    checksum_all(store, blobs)  # everything still readable

    rebalancer = Rebalancer(cluster)
    step = 0
    while not rebalancer.progress.done:
        rebalancer.step(max_blocks=100)
        step += 1
        # Clients keep working mid-migration.
        store.put(f"bucket/live/{step}", f"written-during-step-{step}".encode())
        blobs[f"bucket/live/{step}"] = f"written-during-step-{step}".encode()
        checksum_all(store, blobs)
        print(
            f"  step {step}: {rebalancer.progress.migrated_blocks}/"
            f"{rebalancer.progress.total_blocks} blocks migrated "
            f"({rebalancer.progress.fraction:.0%})"
        )

    cluster.verify()
    fills = cluster.stats().fill_percentages
    print("\nfill levels after scale-out:",
          {k: f"{v:.1f}%" for k, v in sorted(fills.items())})
    print(f"moved {rebalancer.progress.moved_shares} shares total; "
          "all objects verified at every step")


if __name__ == "__main__":
    main()
