#!/usr/bin/env python3
"""Record a workload trace, persist it, replay it, compare read policies.

Shows the workload tooling end to end: generate a skewed trace, save it as
JSON lines (the shareable experiment artifact), reload it, and replay it
against two identical clusters that differ only in how reads pick among
the mirror copies — demonstrating the paper's request-fairness notion on a
hot-spotted workload.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.reporting import print_table
from repro.simulation import TracePlayer
from repro.types import bins_from_capacities
from repro.workloads import (
    dump_trace,
    load_trace,
    materialize,
    write_population,
    zipf_reads,
)


def make_cluster():
    return Cluster(
        bins_from_capacities([2500] * 4, prefix="disk"),
        lambda bins: RedundantShare(bins, copies=2),
    )


def main() -> None:
    # 1. Generate and persist the trace.
    trace = materialize(write_population(600)) + materialize(
        zipf_reads(8000, 60, alpha=1.4, seed=21)
    )
    path = Path(tempfile.gettempdir()) / "repro-demo-trace.jsonl"
    count = dump_trace(trace, path)
    print(f"recorded {count} requests to {path} "
          f"({path.stat().st_size} bytes)")

    # 2. Replay against both read policies.
    rows = []
    for policy in ("primary", "rotate"):
        cluster = make_cluster()
        player = TracePlayer(cluster, read_policy=policy)
        report = player.play(load_trace(path))
        shares = report.operation_shares()
        utilisations = report.utilisations()
        rows.append(
            (
                policy,
                f"{max(shares.values()):.1%}",
                f"{max(utilisations.values()):.2f}",
                f"{max(l.mean_response for l in report.device_loads.values()):.2f}",
            )
        )
    print_table(
        "Zipf(1.4) read trace on a 4-disk mirror — read-policy comparison "
        "(fair peak share = 25%)",
        ["read policy", "peak device share", "peak utilisation",
         "worst mean response"],
        rows,
    )
    print("\nrotating reads over the mirror copies flattens the hotspot — "
          "the paper's 'x% of the requests' fairness in action")


if __name__ == "__main__":
    main()
