#!/usr/bin/env python3
"""Erasure-coded block storage on top of Redundant Share.

The paper stresses that its strategies "clearly identify the i-th of k
copies", which is what lets an erasure code replace plain mirroring: each
of the k placed shares has a distinct meaning (data share #2, parity share
#1, ...).  This example builds a Reed-Solomon RS(4+2) cluster over eight
heterogeneous devices, kills two devices, reads *through* the failures, and
rebuilds.

Run:  python examples/erasure_coded_storage.py
"""

from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.erasure import ReedSolomonCode
from repro.types import BinSpec


def main() -> None:
    devices = [
        BinSpec(f"node-{i}", capacity)
        for i, capacity in enumerate([3000, 3000, 2500, 2500, 2000, 2000, 1500, 1500])
    ]
    code = ReedSolomonCode(4, 2)  # any 4 of 6 shares reconstruct a block
    cluster = Cluster(
        devices,
        lambda bins: RedundantShare(bins, copies=code.total_shares),
        code=code,
    )
    print(f"code: {code.describe()}  (overhead {code.storage_overhead:.2f}x, "
          f"tolerates {code.tolerance} device losses)\n")

    blocks = 2000
    for address in range(blocks):
        cluster.write(address, f"document-{address}".encode() * 4)
    print(f"wrote {blocks} blocks "
          f"({code.total_shares} shares each) across {len(devices)} devices")

    fills = cluster.stats().fill_percentages
    print("\nfill levels (fair despite 2:1 capacity spread):")
    for device_id in sorted(fills):
        print(f"  {device_id:<8} {fills[device_id]:6.2f}%")

    print("\nfailing node-2 and node-5 ...")
    cluster.fail_device("node-2")
    cluster.fail_device("node-5")
    sample = cluster.read(123)
    print(f"read through double failure OK: block 123 = {sample[:24]!r}...")

    rebuilt = cluster.repair_device("node-2") + cluster.repair_device("node-5")
    print(f"rebuilt {rebuilt} shares from surviving redundancy")
    cluster.verify()
    print("cluster invariants verified (redundancy + map consistency)")


if __name__ == "__main__":
    main()
