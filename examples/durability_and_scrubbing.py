#!/usr/bin/env python3
"""Operations story: choosing a redundancy scheme and keeping data honest.

Part 1 — planning: compare the mean time to data loss (MTTDL) of the
redundancy schemes the library implements, for a given device MTTF/MTTR,
using the exact Markov model (`repro.analysis`).

Part 2 — operating: run a mirrored cluster, silently corrupt some shares
(bit rot), and let the scrubber detect and repair them from redundancy.

Run:  python examples/durability_and_scrubbing.py
"""

from repro.analysis import DurabilityModel, annual_loss_probability, mttdl
from repro.cluster import ChecksumIndex, Cluster, Scrubber, corrupt_share
from repro.core import RedundantShare
from repro.types import bins_from_capacities

MTTF_DAYS = 1500.0  # a pessimistic disk
MTTR_DAYS = 2.0     # rebuild window


def plan() -> None:
    print(f"=== Durability planning (MTTF={MTTF_DAYS:.0f}d, "
          f"MTTR={MTTR_DAYS:.0f}d) ===")
    schemes = {
        "single copy": DurabilityModel(1, 0, MTTF_DAYS, MTTR_DAYS),
        "mirror k=2": DurabilityModel(2, 1, MTTF_DAYS, MTTR_DAYS),
        "parity 4+1": DurabilityModel(5, 1, MTTF_DAYS, MTTR_DAYS),
        "RS 4+2": DurabilityModel(6, 2, MTTF_DAYS, MTTR_DAYS),
        "mirror k=3": DurabilityModel(3, 2, MTTF_DAYS, MTTR_DAYS),
    }
    print(f"{'scheme':<14}{'MTTDL (years)':>16}{'P(loss in 1y)':>16}")
    for name, model in schemes.items():
        years = mttdl(model) / 365.25
        loss = annual_loss_probability(model, year=365.25)
        print(f"{name:<14}{years:>16,.1f}{loss:>16.2e}")


def operate() -> None:
    print("\n=== Scrubbing a mirrored cluster ===")
    cluster = Cluster(
        bins_from_capacities([3000, 2500, 2000, 1500], prefix="disk"),
        lambda bins: RedundantShare(bins, copies=2),
    )
    blocks = 1500
    for address in range(blocks):
        cluster.write(address, f"payload-{address}".encode() * 2)
    index = ChecksumIndex()
    captured = index.capture(cluster)
    print(f"wrote {blocks} blocks, captured {captured} share checksums")

    # Bit rot strikes three shares on different devices.
    for address in (17, 230, 998):
        device_id = cluster.placement_of(address)[address % 2]
        corrupt_share(cluster, device_id, (address, address % 2))
        print(f"corrupted share ({address}, {address % 2}) on {device_id}")

    report = Scrubber(cluster, index).scrub()
    print(
        f"scrub: scanned={report.scanned} corrupt={report.corrupt} "
        f"repaired={report.repaired} unrepairable={report.unrepairable}"
    )
    assert report.repaired == 3
    for address in (17, 230, 998):
        assert cluster.read(address) == f"payload-{address}".encode() * 2
    print("all corrupted blocks read back correct after repair")


def main() -> None:
    plan()
    operate()


if __name__ == "__main__":
    main()
