#!/usr/bin/env python3
"""Timeline simulation: disks fail and rebuild while the system serves reads.

Uses the discrete-event engine to interleave random device failures with
finite-duration rebuilds on a mirrored (k=2) Redundant Share cluster, and
tracks whether any block ever becomes unreadable.  With mean-time-to-repair
much smaller than mean-time-to-failure, no data is ever lost — the point of
pairing a fair placement with redundancy.

Run:  python examples/failure_recovery_simulation.py
"""

from repro.cluster import Cluster
from repro.core import RedundantShare
from repro.exceptions import DecodingError
from repro.hashing.primitives import stable_u64
from repro.simulation import Simulator
from repro.types import bins_from_capacities

FAIL_INTERVAL = 100.0  # one failure per 100 time units on average
REBUILD_TIME = 10.0
HORIZON = 1000.0
SEED = 7


def main() -> None:
    cluster = Cluster(
        bins_from_capacities([4000, 3500, 3000, 2500, 2000, 2000], prefix="disk"),
        lambda bins: RedundantShare(bins, copies=2),
    )
    blocks = 3000
    for address in range(blocks):
        cluster.write(address, f"block-{address}".encode())

    simulator = Simulator()
    timeline = []

    def readable_blocks() -> int:
        readable = 0
        for address in cluster.addresses():
            try:
                cluster.read(address)
                readable += 1
            except DecodingError:
                pass
        return readable

    def schedule_next_failure(round_number: int) -> None:
        jitter = stable_u64("fail-at", SEED, round_number) % 100 / 100.0
        delay = FAIL_INTERVAL * (0.5 + jitter)
        simulator.schedule(delay, lambda: inject_failure(round_number))

    def inject_failure(round_number: int) -> None:
        active = [
            device_id
            for device_id in cluster.device_ids()
            if cluster.device(device_id).is_active
        ]
        if len(active) > 2:
            victim = active[
                stable_u64("victim", SEED, round_number) % len(active)
            ]
            cluster.fail_device(victim)
            timeline.append((simulator.now, f"FAIL    {victim}"))
            simulator.schedule(REBUILD_TIME, lambda: finish_rebuild(victim))
        schedule_next_failure(round_number + 1)

    def finish_rebuild(device_id: str) -> None:
        rebuilt = cluster.repair_device(device_id)
        timeline.append(
            (simulator.now, f"REBUILT {device_id} ({rebuilt} shares)")
        )

    schedule_next_failure(0)
    simulator.run(until=HORIZON)

    print(f"simulated {HORIZON:.0f} time units, "
          f"{simulator.processed_events} events\n")
    for when, what in timeline:
        print(f"  t={when:7.1f}  {what}")

    readable = readable_blocks()
    print(f"\nreadable blocks at end: {readable}/{blocks}")
    assert readable == blocks, "data was lost!"
    print("no data lost: every failure was covered by the surviving mirror")


if __name__ == "__main__":
    main()
