#!/usr/bin/env python3
"""Side-by-side comparison of replication strategies on skewed disks.

Places the same ball population with Redundant Share, the trivial k-draw
baseline (Definition 2.3), CRUSH and weighted RAID striping on a small,
strongly heterogeneous pool, and reports how far each lands from the fair
capacity shares — the qualitative content of the paper's Sections 2.2/3.

Run:  python examples/strategy_comparison.py
"""

from collections import Counter

from repro.core import RedundantShare
from repro.placement import (
    CrushStrategy,
    TrivialReplication,
    WeightedStripingStrategy,
)
from repro.types import bins_from_capacities

CAPACITIES = [1000, 400, 300, 200, 100]
COPIES = 2
BALLS = 60_000


def observed_shares(strategy):
    counts = Counter()
    for address in range(BALLS):
        counts.update(strategy.place(address))
    total = sum(counts.values())
    return {bin_id: count / total for bin_id, count in counts.items()}


def main() -> None:
    bins = bins_from_capacities(CAPACITIES, prefix="disk")
    total = sum(CAPACITIES)
    fair = {
        spec.bin_id: min(1.0, COPIES * spec.capacity / total) / COPIES
        for spec in bins
    }

    strategies = {
        "redundant-share": RedundantShare(bins, copies=COPIES),
        "trivial": TrivialReplication(bins, copies=COPIES),
        "crush (straw2)": CrushStrategy(bins, copies=COPIES),
        "weighted-raid": WeightedStripingStrategy(bins, copies=COPIES),
    }

    print(f"capacities: {CAPACITIES}, k={COPIES}, balls={BALLS}\n")
    header = f"{'disk':<8}{'fair':>9}" + "".join(
        f"{name:>18}" for name in strategies
    )
    print(header)
    print("-" * len(header))
    results = {name: observed_shares(s) for name, s in strategies.items()}
    for spec in bins:
        row = f"{spec.bin_id:<8}{fair[spec.bin_id]:>8.2%} "
        for name in strategies:
            row += f"{results[name].get(spec.bin_id, 0.0):>17.2%} "
        print(row)

    print("\nmax deviation from fair share:")
    for name in strategies:
        deviation = max(
            abs(results[name].get(bin_id, 0.0) - share)
            for bin_id, share in fair.items()
        )
        print(f"  {name:<16} {deviation:6.2%}")
    print("\nRedundant Share tracks the fair shares; the trivial baseline "
          "starves the big disk (Lemma 2.4).")


if __name__ == "__main__":
    main()
