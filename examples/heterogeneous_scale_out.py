#!/usr/bin/env python3
"""Scale-out story: a heterogeneous cluster grows and shrinks over years.

Replays the paper's Figure 2 scenario as an operations story: a pool starts
with 8 disks of increasing size (each hardware generation is bigger), gains
two generations of two disks each, then retires the four smallest disks —
and after every step the fill level of every disk stays equal, without any
central remapping table.

Run:  python examples/heterogeneous_scale_out.py
"""

from repro.core import RedundantShare
from repro.simulation import paper_growth_steps, run_fairness


def main() -> None:
    # 1/100th of the paper's absolute sizes for a quick run; ratios equal.
    steps = paper_growth_steps(base=5000, step=1000)
    balls = 20_000

    results = run_fairness(
        steps, lambda bins: RedundantShare(bins, copies=2), balls=balls
    )

    print("Fill percentage per disk after each reconfiguration")
    print("(equal percentages in a column = perfectly fair)\n")
    all_disks = sorted(
        {disk for result in results for disk in result.fills}
    )
    header = "disk        " + "".join(f"{step.label:>18}" for step in steps)
    print(header)
    print("-" * len(header))
    for disk in all_disks:
        row = f"{disk:<12}"
        for result in results:
            if disk in result.fills:
                row += f"{result.fills[disk]:>17.2f}%"
            else:
                row += f"{'-':>18}"
        print(row)

    print("\nmax-min spread per step (0% = perfect):")
    for result in results:
        print(f"  {result.label:<18} {result.spread:6.2f}%")


if __name__ == "__main__":
    main()
